//! Decision-audit causality: the event stream must tell a coherent story.
//! Every redistribution the engine performs has to be preceded by the γ-gate
//! evaluation that admitted it (verdict `accept`), and every rollback fault
//! has to follow the aborted redistribution it undoes.
//!
//! The scenario reuses the `fault_recovery` recipe: an eager distributed
//! scheme on a quiet 2+2 WAN whose link drops large messages for the first
//! ~60% of the run, so the stream is guaranteed to contain accepted gates,
//! successful redistributions, and at least one mid-flight abort + rollback.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use telemetry::{EventKind, FaultKind, GateVerdict, Telemetry};
use topology::faults::{FaultKind as LinkFaultKind, FaultSchedule};
use topology::link::Link;
use topology::{presets, DistributedSystem, SimTime, SystemBuilder};

const STEPS: usize = 10;

fn wan_pair(sched: FaultSchedule) -> DistributedSystem {
    let wan = Link::dedicated("wan", SimTime::from_millis(5), 2e7).with_faults(sched);
    SystemBuilder::new()
        .group("A", 2, 1.0, presets::origin2000_intra())
        .group("B", 2, 1.0, presets::origin2000_intra())
        .connect(0, 1, wan)
        .build()
}

fn cfg() -> RunConfig {
    let scheme = Scheme::Distributed(dlb::DistributedDlbConfig {
        gamma: 0.0,
        imbalance_tolerance: 1.02,
        probe_small_bytes: 256,
        probe_large_bytes: 4096,
        fault: dlb::FaultTolerancePolicy {
            quarantine_after: 1,
            probation_interval: 1,
            ..Default::default()
        },
        ..Default::default()
    });
    let mut c = RunConfig::new(AppKind::ShockPool3D, 16, STEPS, scheme);
    c.max_levels = 3;
    c
}

/// One faulted run with a recording sink: large transfers die for the first
/// ~60% of the fault-free runtime, cutting grid migrations mid-flight.
fn faulty_run() -> (samr_engine::RunResult, Vec<telemetry::EventRecord>) {
    let baseline = Driver::new(wan_pair(FaultSchedule::none()), cfg()).run();
    assert!(baseline.global_redistributions >= 1, "inert baseline");
    let window_end = SimTime::from_secs_f64(0.6 * baseline.total_secs);
    let sched = FaultSchedule::none().with_window(
        SimTime::ZERO,
        window_end,
        LinkFaultKind::DropLarge {
            threshold_bytes: 8 << 10,
        },
    );
    let (tel, sink) = Telemetry::recording_shared();
    let mut c = cfg();
    c.telemetry = tel;
    let res = Driver::new(wan_pair(sched), c).run();
    let events = sink.lock().unwrap().events();
    (res, events)
}

#[test]
fn audit_log_is_causally_consistent() {
    let (res, events) = faulty_run();
    assert!(res.global_checks > 0, "run evaluated no gates at all");
    assert!(res.faults.aborts >= 1, "scenario must abort a redistribution");

    // seq is a strict total order across both rings
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }

    // --- every redistribute admitted by the nearest preceding gate --------
    let mut last_gate_verdict: Option<GateVerdict> = None;
    let mut redists_seen = 0usize;
    for ev in &events {
        match &ev.kind {
            EventKind::GammaGate(g) => last_gate_verdict = Some(g.verdict),
            EventKind::Redistribute(_) => {
                redists_seen += 1;
                assert_eq!(
                    last_gate_verdict,
                    Some(GateVerdict::Accept),
                    "redistribute at seq {} not admitted by the nearest preceding gate",
                    ev.seq
                );
                // consume it: the next redistribute needs its own accept
                last_gate_verdict = None;
            }
            _ => {}
        }
    }
    assert_eq!(
        redists_seen, res.global_redistributions,
        "event stream missed redistributions"
    );
    assert!(redists_seen > 0);

    // --- every rollback follows the aborted redistribution it undoes ------
    let mut aborted_redists: Vec<u64> = Vec::new(); // seqs, in order
    let mut rollbacks = 0usize;
    for ev in &events {
        match &ev.kind {
            EventKind::Redistribute(r) if r.aborted => aborted_redists.push(ev.seq),
            EventKind::Fault(f) => {
                if let FaultKind::Rollback { wasted_secs } = f.kind {
                    rollbacks += 1;
                    assert!(wasted_secs >= 0.0);
                    let prev = aborted_redists.pop();
                    assert!(
                        prev.is_some_and(|s| s < ev.seq),
                        "rollback at seq {} has no preceding aborted redistribution",
                        ev.seq
                    );
                }
            }
            _ => {}
        }
    }
    assert!(
        aborted_redists.is_empty(),
        "aborted redistribution without a rollback record"
    );
    assert_eq!(rollbacks, res.faults.aborts as usize);
    assert!(rollbacks > 0);

    // --- counters agree with the engine's own tally ------------------------
    let gates = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GammaGate(_)))
        .count();
    assert_eq!(gates, res.global_checks);
}
