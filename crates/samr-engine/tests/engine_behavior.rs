//! Behavioural tests of the SAMR driver: invariants after stepping, sane
//! physics, workload accounting consistency, multi-group generality.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use topology::{presets, ProcId};

fn driver(scheme: Scheme) -> Driver {
    let sys = presets::anl_ncsa_wan(2, 2, 5);
    let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 3, scheme);
    cfg.max_levels = 3;
    Driver::new(sys, cfg)
}

#[test]
fn hierarchy_invariants_hold_after_every_step() {
    for scheme in [
        Scheme::Static,
        Scheme::Parallel,
        Scheme::distributed_default(),
    ] {
        let mut d = driver(scheme);
        for step in 0..3 {
            d.step_once();
            assert!(
                d.hierarchy().check_invariants().is_ok(),
                "step {step}: {:?}",
                d.hierarchy().check_invariants()
            );
        }
    }
}

#[test]
fn solution_stays_finite_and_positive() {
    let mut d = driver(Scheme::distributed_default());
    for _ in 0..3 {
        d.step_once();
    }
    for p in d.hierarchy().iter() {
        for f in &p.fields {
            for c in p.region.iter_cells() {
                let v = f.get(c);
                assert!(v.is_finite(), "non-finite value in {:?}", p.id);
            }
        }
        // density (field 0) must stay positive everywhere
        for c in p.region.iter_cells() {
            assert!(p.fields[0].get(c) > 0.0, "non-positive density");
        }
    }
}

#[test]
fn history_snapshot_totals_match_hierarchy() {
    // The snapshot is taken before the balancing hook (ownership may move
    // afterwards), but per-level *totals* are conserved by balancing, so
    // they must agree with the final hierarchy.
    let mut d = driver(Scheme::distributed_default());
    d.step_once();
    d.step_once();
    let h = d.hierarchy();
    let nprocs = d.system().nprocs();
    for level in 0..h.num_levels() {
        let snapshot_total: i64 = (0..nprocs)
            .map(|p| d.history().proc_level_load(level, p))
            .sum();
        assert_eq!(snapshot_total, h.level_cells(level), "level {level}");
    }
    assert!(d.history().last_step_secs() > 0.0);
}

#[test]
fn single_proc_run_is_pure_compute() {
    let sys = presets::single_origin2000(1);
    let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 2, Scheme::Static);
    cfg.max_levels = 3;
    let r = Driver::new(sys, cfg).run();
    assert_eq!(r.breakdown.remote_msgs, 0);
    assert!(r.breakdown.comm < 1e-9, "comm {:?}", r.breakdown.comm);
    assert!((r.total_secs - r.breakdown.compute).abs() / r.total_secs < 0.05);
}

#[test]
fn refinement_tracks_the_moving_shock() {
    // the refined region's center of mass must move over the run
    let mut d = driver(Scheme::Static);
    let centroid = |d: &Driver| -> f64 {
        let h = d.hierarchy();
        let mut cx = 0.0;
        let mut n = 0.0;
        for &id in h.level_ids(1) {
            let p = h.patch(id);
            cx += (p.region.lo.x + p.region.hi.x) as f64 / 2.0 * p.cells() as f64;
            n += p.cells() as f64;
        }
        cx / n.max(1.0)
    };
    let c0 = centroid(&d);
    for _ in 0..3 {
        d.step_once();
    }
    let c1 = centroid(&d);
    assert!(c1 > c0 + 0.5, "shock refinement moved {c0} -> {c1}");
}

#[test]
fn three_site_system_runs_and_balances() {
    let sys = presets::three_site_wan(2, 2, 2, 5);
    let mut cfg = RunConfig::new(
        AppKind::ShockPool3D,
        16,
        3,
        Scheme::distributed_default(),
    );
    cfg.max_levels = 3;
    let mut d = Driver::new(sys.clone(), cfg);
    for _ in 0..3 {
        d.step_once();
        assert!(d.hierarchy().check_invariants().is_ok());
        // Children are placed in their parents' group; a just-executed
        // global redistribution may strand some until the next regrid, so
        // cross-group parent-child pairs must stay a small minority.
        let h = d.hierarchy();
        let (mut total, mut crossed) = (0usize, 0usize);
        for p in h.iter() {
            if let Some(parent) = p.parent {
                total += 1;
                if sys.group_of(ProcId(h.patch(parent).owner))
                    != sys.group_of(ProcId(p.owner))
                {
                    crossed += 1;
                }
            }
        }
        assert!(
            crossed * 4 <= total,
            "{crossed}/{total} children stranded across groups"
        );
    }
    let r = d.finish();
    assert!(r.total_secs > 0.0);
    assert!(r.levels >= 2);
}

#[test]
fn static_scheme_never_migrates() {
    let mut d = driver(Scheme::Static);
    d.step_once();
    let owners_before: Vec<usize> = d.hierarchy().level_ids(0).iter().map(|&id| d.hierarchy().patch(id).owner).collect();
    d.step_once();
    let owners_after: Vec<usize> = d.hierarchy().level_ids(0).iter().map(|&id| d.hierarchy().patch(id).owner).collect();
    assert_eq!(owners_before, owners_after);
}

#[test]
fn cell_updates_grow_with_steps() {
    let sys = presets::anl_ncsa_wan(2, 2, 5);
    let mk = |steps| {
        let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, steps, Scheme::Static);
        cfg.max_levels = 3;
        Driver::new(sys.clone(), cfg).run()
    };
    let short = mk(2);
    let long = mk(4);
    assert!(long.cell_updates > short.cell_updates * 3 / 2);
}

#[test]
fn trace_records_every_step() {
    let mut d = driver(Scheme::distributed_default());
    for _ in 0..3 {
        d.step_once();
    }
    let t = d.trace();
    assert_eq!(t.len(), 3);
    for (i, r) in t.records.iter().enumerate() {
        assert_eq!(r.step, i as u64);
        assert!(r.step_secs > 0.0);
        assert_eq!(r.grids_per_level.len(), r.cells_per_level.len());
        assert_eq!(r.group_workload.len(), 2);
    }
    // elapsed is monotone
    for w in t.records.windows(2) {
        assert!(w[1].elapsed_secs >= w[0].elapsed_secs);
    }
    // CSV parses into consistent rows
    let csv = t.to_csv();
    assert_eq!(csv.lines().count(), 4);
}

#[test]
fn regrid_interval_reduces_adaptations() {
    let sys = presets::single_origin2000(2);
    let run = |interval: usize| {
        let mut cfg = RunConfig::new(AppKind::AdvectBlob, 16, 4, Scheme::Static);
        cfg.max_levels = 3;
        cfg.regrid_interval = interval;
        Driver::new(sys.clone(), cfg).run()
    };
    let every = run(1);
    let sparse = run(4);
    // same physics scale, but fewer regrids -> staler grids; both must work
    assert!(every.cell_updates > 0 && sparse.cell_updates > 0);
    let ratio = every.cell_updates as f64 / sparse.cell_updates as f64;
    assert!((0.5..2.0).contains(&ratio), "{ratio}");
}
