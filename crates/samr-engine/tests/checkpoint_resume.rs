//! Checkpoint/resume: the physics must continue exactly across a restart.

use samr_engine::{AppKind, Checkpoint, Driver, RunConfig, Scheme};
use topology::presets;

fn cfg(steps: usize) -> RunConfig {
    let mut c = RunConfig::new(AppKind::ShockPool3D, 16, steps, Scheme::Static);
    c.max_levels = 3;
    c
}

/// Hash-like fingerprint of the solution state.
fn solution_fingerprint(d: &Driver) -> (usize, i64, u64) {
    let h = d.hierarchy();
    let mut bits: u64 = 0;
    let mut cells = 0;
    for p in h.iter() {
        cells += p.cells();
        for f in &p.fields {
            for c in p.region.iter_cells() {
                bits ^= f.get(c).to_bits().rotate_left((c.x % 63) as u32);
            }
        }
    }
    (h.num_patches(), cells, bits)
}

#[test]
fn resume_continues_exactly() {
    let sys = presets::single_origin2000(2);
    // reference: run 4 steps straight through
    let mut straight = Driver::new(sys.clone(), cfg(4));
    for _ in 0..4 {
        straight.step_once();
    }

    // checkpointed: 2 steps, save, resume, 2 more
    let mut first = Driver::new(sys.clone(), cfg(4));
    first.step_once();
    first.step_once();
    let ckpt = first.checkpoint();
    let json = ckpt.to_json();
    let restored = Checkpoint::from_json(&json).unwrap();
    let mut second = Driver::resume(sys, cfg(4), &restored);
    second.step_once();
    second.step_once();

    assert_eq!(
        solution_fingerprint(&straight),
        solution_fingerprint(&second),
        "resumed run must reproduce the straight run's solution exactly"
    );
    assert_eq!(
        straight.cell_updates_so_far(),
        second.cell_updates_so_far()
    );
}

#[test]
fn resume_onto_a_different_system() {
    // physics state carries over even when the machine changes (e.g. a
    // restart onto the distributed system)
    let smp = presets::single_origin2000(2);
    let mut first = Driver::new(smp, cfg(4));
    first.step_once();
    let ckpt = first.checkpoint();

    let wan = presets::anl_ncsa_wan(2, 2, 7);
    let mut resumed = Driver::resume(wan, cfg(4), &ckpt);
    // hierarchy intact and stepping works
    assert!(resumed.hierarchy().check_invariants().is_ok());
    let before = resumed.hierarchy().level_cells(0);
    resumed.step_once();
    assert_eq!(resumed.hierarchy().level_cells(0), before);
    assert!(resumed.sim().elapsed() > topology::SimTime::ZERO);
}

#[test]
fn checkpoint_roundtrips_through_json() {
    let sys = presets::anl_lan_pair(1, 1, 3);
    let mut c = RunConfig::new(AppKind::Amr64, 16, 2, Scheme::distributed_default());
    c.max_levels = 3;
    let mut d = Driver::new(sys, c);
    d.step_once();
    let ckpt = d.checkpoint();
    let back = Checkpoint::from_json(&ckpt.to_json()).unwrap();
    assert_eq!(back.particles.len(), ckpt.particles.len());
    assert_eq!(back.step_count, ckpt.step_count);
    assert_eq!(back.cell_updates, ckpt.cell_updates);
    assert_eq!(back.hierarchy.patches.len(), ckpt.hierarchy.patches.len());
}

#[test]
#[should_panic]
fn mismatched_domain_rejected() {
    let sys = presets::single_origin2000(1);
    let d = Driver::new(sys.clone(), cfg(1));
    let ckpt = d.checkpoint();
    let mut wrong = cfg(1);
    wrong.n0 = 24;
    let _ = Driver::resume(sys, wrong, &ckpt);
}

#[test]
#[should_panic]
fn resume_onto_too_small_system_rejected() {
    let sys = presets::single_origin2000(2);
    let mut d = Driver::new(sys, cfg(1));
    d.step_once();
    let ckpt = d.checkpoint();
    // grids owned by proc 1 cannot live on a 1-proc system
    let _ = Driver::resume(presets::single_origin2000(1), cfg(1), &ckpt);
}
