//! The direct ghost exchange must not stage any buffer at all: parent
//! prolongation reads the coarser level in place and sibling windows are
//! copied source→destination through a pair borrow, while the clone-based
//! reference path still copies full patch payloads.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use topology::presets;

fn cfg(reference: bool) -> RunConfig {
    let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 3, Scheme::distributed_default());
    cfg.max_levels = 3;
    cfg.reference_datapath = reference;
    cfg
}

#[test]
fn ghost_exchange_stages_no_buffers_and_avoids_reference_clones() {
    let mut d = Driver::new(presets::anl_ncsa_wan(2, 2, 11), cfg(false));
    for _ in 0..3 {
        d.step_once();
    }
    assert_eq!(
        d.ghost_buffer_cells(),
        0,
        "direct exchange must not allocate staging buffers"
    );
    let avoided = d.ghost_clone_cells_avoided();
    assert!(
        avoided > 0,
        "the reference path would have cloned full payloads"
    );
}

#[test]
fn reference_datapath_allocates_no_exchange_buffers() {
    let mut d = Driver::new(presets::anl_ncsa_wan(2, 2, 11), cfg(true));
    for _ in 0..3 {
        d.step_once();
    }
    assert_eq!(d.ghost_buffer_cells(), 0);
    assert_eq!(d.ghost_clone_cells_avoided(), 0);
}
