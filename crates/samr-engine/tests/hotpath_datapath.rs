//! The zero-clone ghost exchange must allocate window-sized buffers only:
//! its total buffer volume has to stay far below the full patch payloads
//! the clone-based reference path copies.

use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use topology::presets;

fn cfg(reference: bool) -> RunConfig {
    let mut cfg = RunConfig::new(AppKind::ShockPool3D, 16, 3, Scheme::distributed_default());
    cfg.max_levels = 3;
    cfg.reference_datapath = reference;
    cfg
}

#[test]
fn ghost_exchange_buffers_stay_boundary_sized() {
    let mut d = Driver::new(presets::anl_ncsa_wan(2, 2, 11), cfg(false));
    for _ in 0..3 {
        d.step_once();
    }
    let buffered = d.ghost_buffer_cells();
    let avoided = d.ghost_clone_cells_avoided();
    assert!(buffered > 0, "exchange ran and extracted slabs");
    assert!(avoided > 0, "the reference path would have cloned payloads");
    // boundary area vs patch volume: the slabs must be a small fraction of
    // what full-field clones would have copied
    assert!(
        (buffered as f64) < 0.5 * avoided as f64,
        "buffered {buffered} cells vs cloned {avoided} cells"
    );
}

#[test]
fn reference_datapath_allocates_no_exchange_buffers() {
    let mut d = Driver::new(presets::anl_ncsa_wan(2, 2, 11), cfg(true));
    for _ in 0..3 {
        d.step_once();
    }
    assert_eq!(d.ghost_buffer_cells(), 0);
    assert_eq!(d.ghost_clone_cells_avoided(), 0);
}
