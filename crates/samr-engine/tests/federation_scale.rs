//! Federation-scale decision phase: the hierarchical tree reduction must
//! collapse onto the flat all-groups compare at small G (it *is* the flat
//! compare — a single tree node over the individual groups), and stay
//! bit-deterministic at federation scale, recording telemetry or not.

use dlb::DistributedDlbConfig;
use samr_engine::{AppKind, Driver, RunConfig, RunResult, Scheme};
use telemetry::TelemetrySink as _;
use topology::presets;
use topology::DistributedSystem;

/// Everything that must agree bitwise between two runs (or two decision
/// datapaths): simulated outcome, workload, network traffic, decision
/// protocol bookkeeping, and the final balance.
type Fingerprint = (u64, u64, u64, u64, usize, usize, usize, u64, u64, u64);

fn fingerprint(r: &RunResult) -> Fingerprint {
    (
        r.total_secs.to_bits(),
        r.cell_updates,
        r.breakdown.remote_bytes,
        r.breakdown.remote_msgs,
        r.final_patches,
        r.global_checks,
        r.global_redistributions,
        r.decision_msgs,
        r.estimator_pairs,
        r.final_imbalance.to_bits(),
    )
}

fn run(sys: DistributedSystem, flat_reference: bool, tel: telemetry::Telemetry) -> RunResult {
    let mut cfg = RunConfig::new(
        AppKind::Amr64,
        16,
        3,
        Scheme::Distributed(DistributedDlbConfig {
            flat_reference,
            ..Default::default()
        }),
    );
    cfg.max_levels = 3;
    cfg.telemetry = tel;
    Driver::new(sys, cfg).run()
}

/// At G ≤ [`dlb::distributed::TREE_ARITY`] the hierarchical dispatch never
/// fires, so `flat_reference` must change *nothing*: same decisions, same
/// traffic, same outcome, bit for bit.
#[test]
fn small_g_hierarchical_equals_flat() {
    type MkSystem = fn() -> DistributedSystem;
    let systems: Vec<(&str, MkSystem)> = vec![
        ("anl_ncsa_wan 2x2", || presets::anl_ncsa_wan(2, 2, 7)),
        ("three_site_wan 2+2+2", || presets::three_site_wan(2, 2, 2, 7)),
        ("anl_lan_pair 4x4", || presets::anl_lan_pair(4, 4, 7)),
    ];
    for (name, mk) in systems {
        let hier = run(mk(), false, telemetry::Telemetry::null());
        let flat = run(mk(), true, telemetry::Telemetry::null());
        assert_eq!(
            fingerprint(&hier),
            fingerprint(&flat),
            "{name}: hierarchical dispatch must be inert at small G"
        );
        assert_eq!(hier.decisions.len(), flat.decisions.len(), "{name}");
        for (a, b) in hier.decisions.iter().zip(&flat.decisions) {
            assert_eq!(a.invoked, b.invoked, "{name} step {}", a.step);
            assert_eq!(a.moved_cells, b.moved_cells, "{name} step {}", a.step);
        }
    }
}

fn federation_run(tel: telemetry::Telemetry) -> RunResult {
    let sys = presets::federation(64, 2, 20011110);
    let mut cfg = RunConfig::new(
        AppKind::Amr64,
        32,
        2,
        Scheme::Distributed(DistributedDlbConfig::default()),
    );
    cfg.max_levels = 2;
    cfg.max_box_cells = 512;
    cfg.telemetry = tel;
    Driver::new(sys, cfg).run()
}

/// G = 64 federation: two executions are bit-identical, including one that
/// records telemetry (recording must never perturb the simulation), and the
/// tree-reduction bookkeeping is O(G), not O(G²).
#[test]
fn federation_g64_is_deterministic() {
    let a = federation_run(telemetry::Telemetry::null());
    let b = federation_run(telemetry::Telemetry::null());
    assert_eq!(fingerprint(&a), fingerprint(&b), "re-run must be bit-identical");

    let (tel, sink) = telemetry::Telemetry::recording_shared();
    let c = federation_run(tel);
    assert_eq!(
        fingerprint(&a),
        fingerprint(&c),
        "recording telemetry must not perturb the run"
    );
    assert!(sink.lock().unwrap().summary().is_some());

    // O(G) decision bookkeeping: the flat compare would allocate
    // G·(G−1)/2 = 2016 estimator pairs; the tree only touches
    // representative pairs.
    assert!(
        a.estimator_pairs <= 8 * 64,
        "estimator pairs must stay O(G): got {}",
        a.estimator_pairs
    );
    assert!(a.global_checks > 0, "the global phase must have run");
}
