//! Configuration fuzzing: any sane combination of app, scheme, system shape
//! and seed must run to completion with invariants intact.

use proptest::prelude::*;
use samr_engine::{AppKind, Driver, RunConfig, Scheme};
use topology::presets;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_sane_config_runs(
        app_ix in 0usize..3,
        scheme_ix in 0usize..3,
        na in 1usize..3,
        nb in 1usize..3,
        seed in 0u64..1000,
        gamma in 0.0f64..8.0,
        steps in 1usize..3,
    ) {
        let app = [AppKind::ShockPool3D, AppKind::Amr64, AppKind::AdvectBlob][app_ix];
        let scheme = match scheme_ix {
            0 => Scheme::Static,
            1 => Scheme::Parallel,
            _ => Scheme::Distributed(dlb::DistributedDlbConfig {
                gamma,
                ..Default::default()
            }),
        };
        let sys = presets::anl_ncsa_wan(na, nb, seed);
        let mut cfg = RunConfig::new(app, 8, steps, scheme);
        cfg.max_levels = 2;
        cfg.seed = seed;
        let mut d = Driver::new(sys, cfg);
        for _ in 0..steps {
            d.step_once();
            prop_assert!(d.hierarchy().check_invariants().is_ok());
        }
        let r = d.finish();
        prop_assert!(r.total_secs.is_finite() && r.total_secs > 0.0);
        prop_assert!(r.cell_updates > 0);
    }
}
