//! Scheme selection: which load balancer drives a run.

use dlb::{DistributedDlb, DistributedDlbConfig, LbContext, LoadBalancer, ParallelDlb};
use samr_mesh::hierarchy::GridHierarchy;
use topology::DistributedSystem;

/// Which DLB scheme to run (serializable run parameter).
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // one instance per run
pub enum Scheme {
    /// No balancing at all: children stay on their parent's processor.
    Static,
    /// The ICPP'01 parallel DLB baseline.
    Parallel,
    /// The paper's distributed DLB.
    Distributed(DistributedDlbConfig),
}

impl Scheme {
    /// Distributed scheme with the paper's defaults (γ = 2).
    pub fn distributed_default() -> Scheme {
        Scheme::Distributed(DistributedDlbConfig::default())
    }

    /// Distributed scheme with the NWS-style forecasting layer enabled:
    /// adaptive predictor on every link/load series and proactive global
    /// checks at fine levels.
    pub fn distributed_predictive(seed: u64) -> Scheme {
        Scheme::Distributed(DistributedDlbConfig::predictive(seed))
    }

    /// Distributed scheme with an explicit predictor and forecast horizon.
    pub fn distributed_with_predictor(
        kind: dlb::PredictorKind,
        seed: u64,
        horizon: u32,
    ) -> Scheme {
        Scheme::Distributed(DistributedDlbConfig {
            predictor: Some(kind),
            forecast_seed: seed,
            forecast_horizon: horizon,
            ..Default::default()
        })
    }

    pub(crate) fn instantiate(&self) -> SchemeInstance {
        match self {
            Scheme::Static => SchemeInstance::Static,
            Scheme::Parallel => SchemeInstance::Parallel(ParallelDlb::default()),
            Scheme::Distributed(cfg) => {
                SchemeInstance::Distributed(DistributedDlb::new(cfg.clone()))
            }
        }
    }
}

/// A live balancer (enum dispatch keeps the driver object-safe and
/// inspectable after the run).
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one instance per run
pub enum SchemeInstance {
    Static,
    Parallel(ParallelDlb),
    Distributed(DistributedDlb),
}

impl SchemeInstance {
    pub fn name(&self) -> &'static str {
        match self {
            SchemeInstance::Static => "static",
            SchemeInstance::Parallel(p) => p.name(),
            SchemeInstance::Distributed(d) => d.name(),
        }
    }

    pub fn after_level_step(
        &mut self,
        ctx: LbContext<'_>,
        level: usize,
    ) -> simnet::SimResult<()> {
        match self {
            SchemeInstance::Static => Ok(()),
            SchemeInstance::Parallel(p) => p.after_level_step(ctx, level),
            SchemeInstance::Distributed(d) => d.after_level_step(ctx, level),
        }
    }

    pub fn place_new_patches(
        &mut self,
        hier: &GridHierarchy,
        sys: &DistributedSystem,
        level: usize,
        parents: &[usize],
        sizes: &[i64],
    ) -> Vec<usize> {
        match self {
            // static: children live with their parents
            SchemeInstance::Static => parents.to_vec(),
            SchemeInstance::Parallel(p) => p.place_new_patches(hier, sys, level, parents, sizes),
            SchemeInstance::Distributed(d) => {
                d.place_new_patches(hier, sys, level, parents, sizes)
            }
        }
    }

    /// Global-phase decision log (distributed scheme only).
    pub fn decisions(&self) -> &[dlb::GlobalDecision] {
        match self {
            SchemeInstance::Distributed(d) => &d.decisions,
            _ => &[],
        }
    }

    /// Aggregate fault counters of the scheme's degradation protocol
    /// (zeroes for schemes without one).
    pub fn fault_stats(&self) -> dlb::FaultStats {
        match self {
            SchemeInstance::Distributed(d) => d.fault_stats(),
            _ => dlb::FaultStats::default(),
        }
    }

    /// Forecast-quality summary of the scheme's network-weather series
    /// (zeroes for schemes without a forecasting layer).
    pub fn forecast_summary(&self) -> dlb::ForecastSummary {
        match self {
            SchemeInstance::Distributed(d) => d.forecast_summary(),
            _ => dlb::ForecastSummary::default(),
        }
    }

    /// Decision-phase network bookkeeping: `(estimator_pairs,
    /// decision_msgs)` — link-estimator pairs ever allocated and
    /// inter-group messages charged by global checks. Zeroes for schemes
    /// without a global decision phase.
    pub fn decision_net(&self) -> (u64, u64) {
        match self {
            SchemeInstance::Distributed(d) => (d.estimator_pairs() as u64, d.decision_msgs()),
            _ => (0, 0),
        }
    }

    /// Chronological fault-event log (empty for schemes without one).
    pub fn fault_events(&self) -> &[dlb::FaultEvent] {
        match self {
            SchemeInstance::Distributed(d) => d.fault_events(),
            _ => &[],
        }
    }
}
