//! Run configuration and result types.

use crate::app::AppKind;
use crate::scheme::Scheme;
use metrics::{FaultCounters, ForecastStats, PhaseWall, RecoveryStats, RunBreakdown};
use serde::Serialize;
use simnet::RetryPolicy;
use topology::ProcFaultSchedule;

/// Parameters of one simulated SAMR run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Workload.
    pub app: AppKind,
    /// Level-0 domain cells per side.
    pub n0: i64,
    /// Maximum refinement levels (root included). The paper's Fig. 1 shows 4.
    pub max_levels: usize,
    /// Refinement factor between levels (paper uses 2).
    pub refine_factor: i64,
    /// Number of level-0 timesteps to run.
    pub steps: usize,
    /// The DLB scheme driving the run.
    pub scheme: Scheme,
    /// RNG seed for initial conditions (and, via the topology presets, for
    /// background traffic).
    pub seed: u64,
    /// Regrid a level every this many of its steps.
    pub regrid_interval: usize,
    /// Flag-buffer width in cells.
    pub flag_buffer: usize,
    /// Largest allowed cells per created subgrid (keeps grids movable).
    pub max_box_cells: i64,
    /// Override of the application's per-cell-update compute cost (seconds
    /// on a weight-1.0 processor). `None` uses the app default. This is the
    /// calibration knob for the compute/communication ratio of the modeled
    /// testbed.
    pub cost_per_cell: Option<f64>,
    /// Retry policy for the driver's bulk boundary/regrid transfers. A
    /// transfer that still fails after these retries is tolerated (the
    /// receiver advances with stale ghost data) and counted in
    /// [`RunResult::faults`].
    pub comm_retry: RetryPolicy,
    /// Run solve, ghost exchange and restriction through the retained
    /// per-cell reference implementations (clone-based exchange, update-list
    /// sweeps) instead of the optimized kernels. Both produce bit-identical
    /// fields and traces (enforced by the determinism tests and golden
    /// kernel pins); the reference path exists to prove that and to measure
    /// the speedup the optimized path buys.
    pub reference_datapath: bool,
    /// Seeded crash/rejoin windows per processor. A proc inside a crash
    /// window is dead: its sends fail fast, its group runs the global phase
    /// at reduced capacity, and the driver evacuates its patches at the
    /// next step boundary — reconstructing their data from the per-step
    /// recovery checkpoint and charging the recomputation to the survivors
    /// ([`RunResult::recovery`]). The default schedule is quiet.
    pub proc_faults: ProcFaultSchedule,
    /// Level-0 steps before the hierarchy's field pool is marked steady.
    /// The first steps populate the pool's free lists (every acquisition is
    /// a miss on a cold pool) and let the refinement hierarchy grow to its
    /// working set — the default of 2 covers the initial mesh build-out;
    /// after the warm-up, misses are counted as `steady_misses` in
    /// [`RunResult::pool`] — the hotpath gate asserts that count stays
    /// zero, i.e. the steady state allocates no field buffers at all.
    pub pool_warmup_steps: usize,
    /// Observability handle threaded through the simulator, the DLB scheme
    /// and the driver's phase spans. The default null handle records
    /// nothing and costs nothing; pass [`telemetry::Telemetry::recording`]
    /// (or `recording_shared` to keep a reader) to capture spans, decision
    /// events and Chrome-trace/JSONL exports. Recording never perturbs the
    /// simulation: fingerprints are bit-identical either way.
    pub telemetry: telemetry::Telemetry,
}

impl RunConfig {
    /// Sensible defaults for `app` at domain size `n0`: 4 levels, r = 2,
    /// regrid every step, one-cell flag buffer.
    pub fn new(app: AppKind, n0: i64, steps: usize, scheme: Scheme) -> Self {
        RunConfig {
            app,
            n0,
            max_levels: 4,
            refine_factor: 2,
            steps,
            scheme,
            seed: 42,
            regrid_interval: 1,
            flag_buffer: 1,
            max_box_cells: (n0 * n0 * n0 / 8).max(512),
            cost_per_cell: None,
            comm_retry: RetryPolicy::default(),
            reference_datapath: false,
            proc_faults: ProcFaultSchedule::default(),
            pool_warmup_steps: 2,
            telemetry: telemetry::Telemetry::null(),
        }
    }
}

/// Outcome of one run (all times are simulated seconds).
#[derive(Clone, Debug, Serialize)]
pub struct RunResult {
    /// Scheme name ("parallel DLB", "distributed DLB", "static").
    pub scheme: String,
    /// System description (e.g. "ANL(4) + NCSA(4) over MREN OC-3").
    pub system: String,
    /// Workload.
    pub app: AppKind,
    /// Total execution time.
    pub total_secs: f64,
    /// Where the time went.
    pub breakdown: RunBreakdown,
    /// Level-0 steps executed.
    pub steps: usize,
    /// Levels present at the end.
    pub levels: usize,
    /// Grids present at the end.
    pub final_patches: usize,
    /// Most grids alive at any point of the run (memory high-water mark).
    pub peak_patches: usize,
    /// Host wall-clock seconds per driver phase (real time, excludes setup).
    pub wall: PhaseWall,
    /// Total cell updates executed (workload size; equal across schemes for
    /// the same app/seed when adaptation follows the same physics).
    pub cell_updates: u64,
    /// Global-phase decisions evaluated (distributed scheme).
    pub global_checks: usize,
    /// Global redistributions actually invoked.
    pub global_redistributions: usize,
    /// Fault-protocol counters: scheme-level retries/quarantines/aborts
    /// plus the driver's tolerated bulk-transfer failures.
    pub faults: FaultCounters,
    /// Forecast-quality counters of the scheme's network-weather series
    /// (zeroes for schemes without a forecasting layer).
    pub forecast: ForecastStats,
    /// Crash-stop recovery counters: crashes detected, patches evacuated,
    /// MTTR, and the recompute overhead charged for checkpoint restores
    /// (all zero when [`RunConfig::proc_faults`] is quiet).
    pub recovery: RecoveryStats,
    /// Field-buffer pool statistics of the run's hierarchy: hits, misses,
    /// bytes recycled, and misses after the warm-up window
    /// ([`RunConfig::pool_warmup_steps`]) — the steady-state allocation
    /// count the zero-allocation gate asserts on.
    pub pool: samr_mesh::pool::PoolStats,
    /// Serving-tier breakdown of the pool's hits (home shard vs global
    /// spill vs steal sweep, upward class borrows, per-shard service
    /// counts). Scheduling-dependent diagnostics: excluded from the
    /// serialized contract (`skip`) and from fingerprints — the hotpath
    /// bench and the `field_pool` stat block surface it instead.
    #[serde(skip)]
    pub pool_detail: samr_mesh::pool::PoolDetail,
    /// Final power-normalized group imbalance: `(max_g W_g/P_g) /
    /// (mean_g W_g/P_g)` over groups with surviving power, from the
    /// hierarchy's end-of-run cell counts (1.0 when degenerate — a single
    /// group, or nothing loaded). Always finite, unlike the decision-time
    /// max/min ratio, so sweeps can compare it across fault scenarios.
    pub final_imbalance: f64,
    /// Link-estimator pairs the decision phase ever allocated — O(G²) for
    /// the flat all-pairs compare, O(G) for the hierarchical tree.
    pub estimator_pairs: u64,
    /// Inter-group messages charged by global decision phases (collective
    /// legs, probe messages, tree summary/delegation traffic).
    pub decision_msgs: u64,
    /// Per-level-0-step global decision log (distributed scheme only).
    pub decisions: Vec<DecisionSummary>,
    /// Text report of the telemetry sink (None when the run used the
    /// default null handle).
    pub telemetry_summary: Option<String>,
}

/// Serializable summary of one global-phase decision.
#[derive(Clone, Debug, Serialize)]
pub struct DecisionSummary {
    pub step: u64,
    /// Eq.-4 gain estimate, seconds.
    pub gain_secs: f64,
    /// Eq.-1 cost estimate, seconds (absent when no imbalance detected).
    pub cost_secs: Option<f64>,
    /// Power-normalized group imbalance ratio.
    pub imbalance: f64,
    pub invoked: bool,
    /// Whether an invoked redistribution was aborted and rolled back.
    pub aborted: bool,
    /// Level-0 cells moved (when invoked).
    pub moved_cells: i64,
    /// Iteration-weighted workload per group at decision time.
    pub group_loads: Vec<f64>,
}

impl RunResult {
    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} {:<36} total {:>9.2}s  (compute {:>8.2}s, comm {:>8.2}s, lb {:>7.2}s)  grids {:>4}  redist {}/{}",
            self.scheme,
            self.system,
            self.total_secs,
            self.breakdown.compute,
            self.breakdown.comm,
            self.breakdown.lb,
            self.final_patches,
            self.global_redistributions,
            self.global_checks,
        )
    }
}
