//! The evaluation applications: `ShockPool3D`, `AMR64`, and a scalar
//! quickstart workload.
//!
//! §5 of the paper: *"ShockPool3D solves a purely hyperbolic equation, while
//! AMR64 uses hyperbolic (fluid) equation and elliptic (Poisson's) equation
//! as well as a set of ordinary differential equations for the particle
//! trajectories. … AMR64 is designed to simulate the formation of a cluster
//! of galaxies, so many grids are randomly distributed across the whole
//! computational domain; ShockPool3D is designed to simulate the movement of
//! a shock wave (i.e., a plane) that is slightly tilted with respect to the
//! edges of the computational domain, so more and more grids are created
//! along the moving shock wave plane."*

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use samr_mesh::field::Field3;
use samr_mesh::flag::{flag_cells, FlagField, RefineCriterion};
use samr_mesh::patch::GridPatch;
use samr_mesh::pool::{FieldAlloc, FieldPool};
use samr_mesh::region::Region;
use samr_solvers::euler::{self, fields as F};
use samr_solvers::poisson;
use samr_solvers::{advection, Particle, ParticleSet};

/// Which workload to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppKind {
    /// Tilted planar shock driven by the 3-D Euler solver.
    ShockPool3D,
    /// Galaxy-cluster formation analog: Euler + Poisson + particles, with
    /// seeded overdense blobs scattered over the domain.
    Amr64,
    /// Scalar advected blob (cheap; used by quickstart and tests).
    AdvectBlob,
}

use serde::{Deserialize, Serialize};

/// Per-application state and physics dispatch.
#[derive(Clone, Debug)]
pub struct AppState {
    pub kind: AppKind,
    /// Adiabatic index for the Euler apps.
    pub gamma: f64,
    /// Refinement criteria evaluated on each patch.
    pub criteria: Vec<RefineCriterion>,
    /// Particles (AMR64 only; empty otherwise).
    pub particles: ParticleSet,
    /// Blob centers for AMR64's analytic infall acceleration (level-0 cell
    /// coordinates).
    pub wells: Vec<[f64; 3]>,
    /// Level-0 domain extent (cells per side).
    pub n0: i64,
    /// RNG seed used to build the initial conditions.
    pub seed: u64,
}

impl AppState {
    /// Build the application for a level-0 domain of `n0`³ cells.
    pub fn new(kind: AppKind, n0: i64, seed: u64) -> Self {
        let criteria = match kind {
            AppKind::ShockPool3D => vec![RefineCriterion::RelativeSlope {
                field: F::RHO,
                threshold: 0.08,
                eps: 1e-8,
            }],
            AppKind::Amr64 => vec![RefineCriterion::Overdensity {
                field: F::RHO,
                threshold: 2.2,
            }],
            AppKind::AdvectBlob => vec![RefineCriterion::Gradient {
                field: 0,
                threshold: 0.08,
            }],
        };
        let mut app = AppState {
            kind,
            gamma: 5.0 / 3.0,
            criteria,
            particles: ParticleSet::default(),
            wells: Vec::new(),
            n0,
            seed,
        };
        if kind == AppKind::Amr64 {
            app.build_amr64_ic();
        }
        app
    }

    /// Number of solution fields per patch.
    pub fn nfields(&self) -> usize {
        match self.kind {
            AppKind::ShockPool3D => euler::NFIELDS,
            // Euler fields + gravitational potential φ
            AppKind::Amr64 => euler::NFIELDS + 1,
            AppKind::AdvectBlob => 1,
        }
    }

    /// Ghost-zone width required by the solvers.
    pub fn ghost(&self) -> i64 {
        match self.kind {
            AppKind::AdvectBlob => 2, // minmod stencil
            _ => 1,
        }
    }

    /// Reference per-cell-update compute cost in seconds (on a weight-1.0
    /// processor). Calibrated to an Origin2000-class node running an
    /// ENZO-class hydro kernel.
    pub fn cost_per_cell(&self) -> f64 {
        match self.kind {
            AppKind::ShockPool3D => 3.0e-5,
            AppKind::Amr64 => 2.0e-5, // hydro + gravity + particles
            AppKind::AdvectBlob => 0.5e-6,
        }
    }

    /// A CFL-safe `dt/dx` ratio for level 0 given the initial conditions
    /// (each finer level uses the same Courant number by construction).
    pub fn dt_over_dx0(&self) -> f64 {
        match self.kind {
            // strong shock: post-shock signal speed stays under ~4.5
            AppKind::ShockPool3D => 0.10,
            AppKind::Amr64 => 0.15,
            AppKind::AdvectBlob => 0.5, // unit velocity
        }
    }

    fn build_amr64_ic(&mut self) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = self.n0 as f64;
        // a handful of overdense seeds scattered across the whole domain
        let nwells = 6;
        for _ in 0..nwells {
            self.wells.push([
                rng.gen_range(0.15 * n..0.85 * n),
                rng.gen_range(0.15 * n..0.85 * n),
                rng.gen_range(0.15 * n..0.85 * n),
            ]);
        }
        // particles sampled around the wells with small infall velocities
        let mut particles = Vec::new();
        for w in &self.wells {
            for _ in 0..200 {
                let mut pos = [0.0; 3];
                for k in 0..3 {
                    pos[k] = (w[k] + rng.gen_range(-0.12 * n..0.12 * n))
                        .rem_euclid(n);
                }
                particles.push(Particle {
                    pos,
                    vel: [
                        rng.gen_range(-0.02..0.02),
                        rng.gen_range(-0.02..0.02),
                        rng.gen_range(-0.02..0.02),
                    ],
                    mass: 1.0,
                });
            }
        }
        self.particles = ParticleSet::new(particles);
    }

    /// Initialize a freshly created level-0 patch.
    pub fn init_patch(&self, patch: &mut GridPatch) {
        match self.kind {
            AppKind::ShockPool3D => {
                let gamma = self.gamma;
                euler::set_ambient(&mut patch.fields, 1.0, [0.0; 3], 1.0, gamma);
                // High-pressure driver region behind a plane slightly tilted
                // with respect to the domain edges: n̂ ∝ (1, 0.25, 0.1).
                let n0 = self.n0 as f64;
                for p in patch.fields[0].storage_region().iter_cells() {
                    let s = p.x as f64 + 0.25 * p.y as f64 + 0.1 * p.z as f64;
                    if s < 0.18 * n0 {
                        let rho = 4.0;
                        let pr = 12.0;
                        let vx = 1.2;
                        let e = pr / (gamma - 1.0) + 0.5 * rho * vx * vx;
                        patch.fields[F::RHO].set(p, rho);
                        patch.fields[F::MX].set(p, rho * vx);
                        patch.fields[F::E].set(p, e);
                    }
                }
            }
            AppKind::Amr64 => {
                let gamma = self.gamma;
                euler::set_ambient(&mut patch.fields, 1.0, [0.0; 3], 0.6, gamma);
                // Gaussian overdensities at the wells
                let n0 = self.n0 as f64;
                let sigma = 0.05 * n0;
                for p in patch.fields[0].storage_region().iter_cells() {
                    let mut rho = 1.0f64;
                    for w in &self.wells {
                        let dx = p.x as f64 + 0.5 - w[0];
                        let dy = p.y as f64 + 0.5 - w[1];
                        let dz = p.z as f64 + 0.5 - w[2];
                        let r2 = dx * dx + dy * dy + dz * dz;
                        rho += 2.5 * (-r2 / (2.0 * sigma * sigma)).exp();
                    }
                    let pr = 0.6 * rho; // near-isothermal start
                    patch.fields[F::RHO].set(p, rho);
                    patch.fields[F::E].set(p, pr / (gamma - 1.0));
                }
            }
            AppKind::AdvectBlob => {
                let n0 = self.n0 as f64;
                let c = [0.3 * n0, 0.5 * n0, 0.5 * n0];
                let sigma = 0.08 * n0;
                for p in patch.fields[0].storage_region().iter_cells() {
                    let dx = p.x as f64 + 0.5 - c[0];
                    let dy = p.y as f64 + 0.5 - c[1];
                    let dz = p.z as f64 + 0.5 - c[2];
                    let r2 = dx * dx + dy * dy + dz * dz;
                    patch.fields[0].set(p, (-r2 / (2.0 * sigma * sigma)).exp());
                }
            }
        }
    }

    /// One solver step on a patch at `level` with Courant ratio
    /// `dt_over_dx` (same at every level by construction). Ghosts must have
    /// been exchanged already. Scratch fields (solver double buffers, the
    /// Poisson right-hand side) are drawn from `pool` — generic over the
    /// allocator so the driver can pass each rayon worker its own
    /// shard-bound [`samr_mesh::pool::PoolHandle`].
    pub fn step_patch<P: FieldAlloc>(&self, fields: &mut [Field3], dt_over_dx: f64, pool: &P) {
        match self.kind {
            AppKind::ShockPool3D => {
                euler::euler_step(fields, dt_over_dx, self.gamma);
            }
            AppKind::Amr64 => {
                euler::euler_step(&mut fields[..euler::NFIELDS], dt_over_dx, self.gamma);
                // a few relaxation sweeps of ∇²φ = (ρ − ρ̄) each step — the
                // elliptic component (fully converging each step is not
                // necessary for the workload dynamics, matching how cosmology
                // codes carry the potential forward between steps)
                let (head, tail) = fields.split_at_mut(euler::NFIELDS);
                let rho = &head[F::RHO];
                let phi = &mut tail[0];
                let mut rhs = rho.clone_in(pool);
                rhs.map_interior(|_, v| v - 1.0);
                for _ in 0..2 {
                    poisson::rbgs_sweep(phi, &rhs, 1.0);
                }
                rhs.recycle(pool);
            }
            AppKind::AdvectBlob => {
                let c = dt_over_dx;
                advection::advect_step(&mut fields[0], [c, 0.6 * c, 0.0], true, pool);
            }
        }
    }

    /// The reference-datapath counterpart of [`AppState::step_patch`]: the
    /// same physics through the retained per-cell `reference` solver modules
    /// (update-list sweeps, two Riemann solves per cell, per-cell index
    /// math). The golden tests and kernel proptests pin these bit-identical
    /// to the optimized kernels, so a `reference_datapath` run measures
    /// exactly what the optimized solve/ghost/restrict paths buy while
    /// producing the same trace.
    pub fn step_patch_reference<P: FieldAlloc>(
        &self,
        fields: &mut [Field3],
        dt_over_dx: f64,
        pool: &P,
    ) {
        match self.kind {
            AppKind::ShockPool3D => {
                euler::reference::euler_step(fields, dt_over_dx, self.gamma);
            }
            AppKind::Amr64 => {
                euler::reference::euler_step(&mut fields[..euler::NFIELDS], dt_over_dx, self.gamma);
                let (head, tail) = fields.split_at_mut(euler::NFIELDS);
                let rho = &head[F::RHO];
                let phi = &mut tail[0];
                let mut rhs = rho.clone_in(pool);
                samr_mesh::field::reference::map_interior(&mut rhs, |_, v| v - 1.0);
                for _ in 0..2 {
                    poisson::reference::rbgs_sweep(phi, &rhs, 1.0);
                }
                rhs.recycle(pool);
            }
            AppKind::AdvectBlob => {
                let c = dt_over_dx;
                advection::reference::advect_step(&mut fields[0], [c, 0.6 * c, 0.0], true);
            }
        }
    }

    /// Advance global (non-grid) state once per level-0 step: AMR64's
    /// particle trajectories.
    pub fn post_level0_step(&mut self, dt0: f64, domain: Region) {
        if self.kind != AppKind::Amr64 {
            return;
        }
        let wells = self.wells.clone();
        let n0 = self.n0 as f64;
        self.particles.leapfrog(dt0, domain, move |pos| {
            // analytic infall toward the wells (softened point masses)
            let mut a = [0.0f64; 3];
            let soft2 = (0.03 * n0) * (0.03 * n0);
            for w in &wells {
                let d = [w[0] - pos[0], w[1] - pos[1], w[2] - pos[2]];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + soft2;
                let inv = 8.0 / (r2 * r2.sqrt());
                for k in 0..3 {
                    a[k] += d[k] * inv;
                }
            }
            a
        });
    }

    /// Evaluate the refinement criteria on a patch. For `AMR64` the density
    /// seen by the criterion is gas density *plus* the particle overdensity
    /// (deposited NGP onto a scratch copy — particles dominate structure
    /// formation, so refinement must follow them as they fall in), matching
    /// how cosmology codes flag on total matter density.
    pub fn flag_patch(&self, patch: &GridPatch, pool: &FieldPool) -> FlagField {
        if self.kind == AppKind::Amr64 && patch.level == 0 && !self.particles.is_empty() {
            let mut rho = patch.fields[F::RHO].clone_in(pool);
            self.particles.deposit_ngp(&mut rho, 0.05);
            let flags = flag_cells(std::slice::from_ref(&rho), &self.criteria);
            rho.recycle(pool);
            flags
        } else {
            flag_cells(&patch.fields, &self.criteria)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::patch::PatchId;

    fn patch_for(app: &AppState) -> GridPatch {
        GridPatch::new(
            PatchId(0),
            0,
            Region::cube(app.n0),
            None,
            0,
            app.nfields(),
            app.ghost(),
        )
    }

    #[test]
    fn shockpool_ic_has_tilted_jump() {
        let pool = FieldPool::new();
        let app = AppState::new(AppKind::ShockPool3D, 16, 1);
        let mut p = patch_for(&app);
        app.init_patch(&mut p);
        // driver region dense, ambient 1.0
        assert!(p.fields[F::RHO].get(samr_mesh::ivec3(0, 0, 0)) > 3.0);
        assert!((p.fields[F::RHO].get(samr_mesh::ivec3(12, 12, 12)) - 1.0).abs() < 1e-12);
        // flags appear along the jump plane
        let flags = app.flag_patch(&p, &pool);
        assert!(flags.count() > 0);
        // the plane is tilted: flagged x position differs with y
        let bb = flags.bounding_box();
        assert!(bb.size().x >= 1);
    }

    #[test]
    fn amr64_ic_scattered_blobs_and_particles() {
        let pool = FieldPool::new();
        let app = AppState::new(AppKind::Amr64, 16, 7);
        assert_eq!(app.wells.len(), 6);
        assert_eq!(app.particles.len(), 1200);
        let mut p = patch_for(&app);
        app.init_patch(&mut p);
        let flags = app.flag_patch(&p, &pool);
        assert!(flags.count() > 0, "overdense blobs must be flagged");
        // determinism: same seed, same wells
        let app2 = AppState::new(AppKind::Amr64, 16, 7);
        assert_eq!(app.wells, app2.wells);
        let app3 = AppState::new(AppKind::Amr64, 16, 8);
        assert_ne!(app.wells, app3.wells);
    }

    #[test]
    fn advect_blob_moves_flags() {
        let pool = FieldPool::new();
        let app = AppState::new(AppKind::AdvectBlob, 16, 0);
        let mut p = patch_for(&app);
        app.init_patch(&mut p);
        let bb0 = app.flag_patch(&p, &pool).bounding_box();
        for _ in 0..6 {
            for f in p.fields.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            app.step_patch(&mut p.fields, app.dt_over_dx0(), &pool);
        }
        let bb1 = app.flag_patch(&p, &pool).bounding_box();
        assert!(!bb0.is_empty() && !bb1.is_empty());
        assert!(bb1.lo.x > bb0.lo.x, "blob flags moved downstream: {bb0:?} -> {bb1:?}");
    }

    #[test]
    fn shockpool_step_advances_shock() {
        let pool = FieldPool::new();
        let app = AppState::new(AppKind::ShockPool3D, 16, 1);
        let mut p = patch_for(&app);
        app.init_patch(&mut p);
        let probe = samr_mesh::ivec3(8, 2, 2);
        let before = p.fields[F::RHO].get(probe);
        for _ in 0..12 {
            for f in p.fields.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            app.step_patch(&mut p.fields, app.dt_over_dx0(), &pool);
        }
        let after = p.fields[F::RHO].get(probe);
        assert!(after > before * 1.02, "shock reached probe: {before} -> {after}");
    }

    #[test]
    fn amr64_particles_fall_inward() {
        let mut app = AppState::new(AppKind::Amr64, 32, 3);
        let domain = Region::cube(32);
        let well = app.wells[0];
        let dist = |p: &Particle| {
            ((p.pos[0] - well[0]).powi(2)
                + (p.pos[1] - well[1]).powi(2)
                + (p.pos[2] - well[2]).powi(2))
            .sqrt()
        };
        // mean distance of the first well's 200 particles must shrink
        let d0: f64 = app.particles.particles[..200].iter().map(dist).sum::<f64>() / 200.0;
        for _ in 0..10 {
            app.post_level0_step(0.3, domain);
        }
        let d1: f64 = app.particles.particles[..200].iter().map(dist).sum::<f64>() / 200.0;
        assert!(d1 < d0, "infall: {d0} -> {d1}");
    }

    #[test]
    fn amr64_flags_follow_particles() {
        let pool = FieldPool::new();
        // concentrate particles in an otherwise-unflagged corner: the level-0
        // flags must light up there
        let mut app = AppState::new(AppKind::Amr64, 16, 3);
        let mut p = patch_for(&app);
        app.init_patch(&mut p);
        // strip the gas blobs so only particles can flag
        samr_solvers::euler::set_ambient(&mut p.fields, 1.0, [0.0; 3], 0.6, app.gamma);
        let corner = samr_mesh::ivec3(1, 1, 1);
        for (i, part) in app.particles.particles.iter_mut().enumerate() {
            if i < 400 {
                part.pos = [1.2, 1.4, 1.1];
            } else {
                part.pos = [100.0, 100.0, 100.0]; // outside, ignored
            }
        }
        let flags = app.flag_patch(&p, &pool);
        assert!(flags.get(corner), "particle clump must be flagged");
        // without particles the same gas field is quiet
        app.particles = samr_solvers::ParticleSet::default();
        let flags = app.flag_patch(&p, &pool);
        assert_eq!(flags.count(), 0);
    }

    #[test]
    fn nfields_and_ghosts_consistent() {
        assert_eq!(AppState::new(AppKind::ShockPool3D, 8, 0).nfields(), 5);
        assert_eq!(AppState::new(AppKind::Amr64, 8, 0).nfields(), 6);
        assert_eq!(AppState::new(AppKind::AdvectBlob, 8, 0).nfields(), 1);
        assert_eq!(AppState::new(AppKind::AdvectBlob, 8, 0).ghost(), 2);
    }
}
