//! Hierarchy statistics: per-level grid counts, cells, coverage, ownership
//! spread — the numbers reports and examples print about a run's adaptive
//! state.

use samr_mesh::hierarchy::GridHierarchy;
use serde::Serialize;

/// Summary of one refinement level.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct LevelStats {
    pub level: usize,
    /// Number of grids.
    pub grids: usize,
    /// Total cells.
    pub cells: i64,
    /// Fraction of the level's domain covered by grids.
    pub coverage: f64,
    /// Mean cells per grid (0 when empty).
    pub mean_grid_cells: f64,
    /// Largest grid's cells.
    pub max_grid_cells: i64,
}

/// Summary of a whole hierarchy.
#[derive(Clone, Debug, Serialize)]
pub struct HierarchyStats {
    pub levels: Vec<LevelStats>,
    pub total_grids: usize,
    pub total_cells: i64,
    /// Iteration-weighted workload `Σ cells · r^level`.
    pub weighted_workload: f64,
}

/// Compute statistics for `hier`.
pub fn hierarchy_stats(hier: &GridHierarchy) -> HierarchyStats {
    let r = hier.refine_factor() as f64;
    let mut levels = Vec::new();
    let mut total_grids = 0;
    let mut total_cells = 0;
    let mut weighted = 0.0;
    for l in 0..hier.num_levels() {
        let ids = hier.level_ids(l);
        let cells = hier.level_cells(l);
        let domain = hier.domain_at_level(l).cells();
        let max_grid = ids
            .iter()
            .map(|&id| hier.patch(id).cells())
            .max()
            .unwrap_or(0);
        levels.push(LevelStats {
            level: l,
            grids: ids.len(),
            cells,
            coverage: cells as f64 / domain as f64,
            mean_grid_cells: if ids.is_empty() {
                0.0
            } else {
                cells as f64 / ids.len() as f64
            },
            max_grid_cells: max_grid,
        });
        total_grids += ids.len();
        total_cells += cells;
        weighted += cells as f64 * r.powi(l as i32);
    }
    HierarchyStats {
        levels,
        total_grids,
        total_cells,
        weighted_workload: weighted,
    }
}

/// Per-owner cells across all levels — ownership spread for reports.
pub fn ownership_spread(hier: &GridHierarchy, nprocs: usize) -> Vec<i64> {
    let mut v = vec![0i64; nprocs];
    for p in hier.iter() {
        v[p.owner] += p.cells();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_mesh::region::Region;
    use samr_mesh::{ivec3, region};

    fn sample() -> GridHierarchy {
        let mut h = GridHierarchy::new(Region::cube(8), 2, 3, 1, 1);
        let root = h.insert_patch(0, Region::cube(8), None, 0);
        h.insert_patch(1, region(ivec3(0, 0, 0), ivec3(8, 8, 8)), Some(root), 1);
        h.insert_patch(1, region(ivec3(8, 8, 8), ivec3(12, 12, 12)), Some(root), 1);
        h
    }

    #[test]
    fn per_level_numbers() {
        let s = hierarchy_stats(&sample());
        assert_eq!(s.levels.len(), 2);
        assert_eq!(s.levels[0].grids, 1);
        assert_eq!(s.levels[0].cells, 512);
        assert!((s.levels[0].coverage - 1.0).abs() < 1e-12);
        assert_eq!(s.levels[1].grids, 2);
        assert_eq!(s.levels[1].cells, 512 + 64);
        assert!((s.levels[1].coverage - 576.0 / 4096.0).abs() < 1e-12);
        assert_eq!(s.levels[1].max_grid_cells, 512);
        assert_eq!(s.total_grids, 3);
        assert_eq!(s.total_cells, 1088);
        // weighted: 512·1 + 576·2
        assert!((s.weighted_workload - (512.0 + 1152.0)).abs() < 1e-12);
    }

    #[test]
    fn ownership() {
        let v = ownership_spread(&sample(), 2);
        assert_eq!(v, vec![512, 576]);
    }
}
