//! Per-step trace records: what the run looked like after every level-0
//! step, for analysis, plotting, and regression baselines.

use serde::Serialize;

/// Fault-protocol activity during one level-0 step (deltas, not totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct StepFaults {
    /// Retries (probe or collective) that eventually succeeded.
    pub retries: u64,
    /// Global redistributions aborted and rolled back.
    pub aborts: u64,
    /// Groups newly quarantined.
    pub quarantines: u64,
    /// Groups re-admitted from quarantine.
    pub readmissions: u64,
    /// Failed collectives plus tolerated failed bulk transfers.
    pub comm_failures: u64,
    /// Simulated seconds of quarantine ended by this step's re-admissions.
    pub recovery_secs: f64,
}

impl StepFaults {
    /// Whether anything fault-related happened this step.
    pub fn any(&self) -> bool {
        self.retries != 0
            || self.aborts != 0
            || self.quarantines != 0
            || self.readmissions != 0
            || self.comm_failures != 0
    }
}

/// Crash-stop recovery activity during one level-0 step (deltas, not
/// totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct StepRecovery {
    /// Crash-stop process failures detected this step.
    pub crashes: u64,
    /// Crashed procs that recovered and re-entered this step.
    pub rejoins: u64,
    /// Cells evacuated away from dead procs this step (all levels).
    pub evacuated_cells: i64,
    /// Simulated seconds from crash onset to evacuation complete, summed
    /// over this step's crashes.
    pub mttr_secs: f64,
    /// Simulated seconds of recomputation charged for restoring evacuated
    /// patches from checkpointed state.
    pub recompute_secs: f64,
}

impl StepRecovery {
    /// Whether any crash-stop activity happened this step.
    pub fn any(&self) -> bool {
        self.crashes != 0 || self.rejoins != 0 || self.evacuated_cells != 0
    }
}

/// Forecast quality as of the end of one level-0 step (cumulative MAE of
/// the scheme's network-weather series — MAE is a running mean, so per-step
/// deltas would not be meaningful).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct StepForecast {
    /// Mean α forecast MAE across scored link series (seconds).
    pub alpha_mae: f64,
    /// Mean β forecast MAE across scored link series (s/byte).
    pub beta_mae: f64,
    /// Mean group-load forecast MAE across scored series (cells).
    pub load_mae: f64,
}

/// Snapshot taken after each level-0 step.
#[derive(Clone, Debug, Serialize)]
pub struct StepRecord {
    /// Level-0 step index (0-based).
    pub step: u64,
    /// Simulated wall time of this step (seconds).
    pub step_secs: f64,
    /// Cumulative simulated time after this step.
    pub elapsed_secs: f64,
    /// Grids per level after the step.
    pub grids_per_level: Vec<usize>,
    /// Cells per level after the step.
    pub cells_per_level: Vec<i64>,
    /// Iteration-weighted workload per group after the step.
    pub group_workload: Vec<f64>,
    /// Whether the global phase redistributed this step (distributed DLB).
    pub redistributed: bool,
    /// Forecast MAE of the scheme's series after the step.
    pub forecast: StepForecast,
    /// Fault-protocol activity during the step.
    pub faults: StepFaults,
    /// Crash-stop recovery activity during the step.
    pub recovery: StepRecovery,
}

/// A whole run's trace plus CSV export.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RunTrace {
    pub records: Vec<StepRecord>,
}

impl RunTrace {
    pub fn push(&mut self, r: StepRecord) {
        self.records.push(r);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sum of the per-step fault activity over the whole trace.
    pub fn fault_totals(&self) -> StepFaults {
        let mut t = StepFaults::default();
        for r in &self.records {
            t.retries += r.faults.retries;
            t.aborts += r.faults.aborts;
            t.quarantines += r.faults.quarantines;
            t.readmissions += r.faults.readmissions;
            t.comm_failures += r.faults.comm_failures;
            t.recovery_secs += r.faults.recovery_secs;
        }
        t
    }

    /// Sum of the per-step crash-stop activity over the whole trace.
    pub fn recovery_totals(&self) -> StepRecovery {
        let mut t = StepRecovery::default();
        for r in &self.records {
            t.crashes += r.recovery.crashes;
            t.rejoins += r.recovery.rejoins;
            t.evacuated_cells += r.recovery.evacuated_cells;
            t.mttr_secs += r.recovery.mttr_secs;
            t.recompute_secs += r.recovery.recompute_secs;
        }
        t
    }

    /// The single source of truth for the CSV layout: one `(header, cell)`
    /// pair per column, so the header and every row always agree in arity
    /// and order. Levels and groups are flattened to the maximum width seen
    /// in the trace; the forecast block slots in before the fault block,
    /// and the crash-stop recovery block rides after it at the very end
    /// (consumers index blocks from the tail).
    fn columns(&self) -> Vec<Column> {
        let max_levels = self
            .records
            .iter()
            .map(|r| r.grids_per_level.len())
            .max()
            .unwrap_or(0);
        let max_groups = self
            .records
            .iter()
            .map(|r| r.group_workload.len())
            .max()
            .unwrap_or(0);
        let mut cols: Vec<Column> = vec![
            col("step", |r| format!("{}", r.step)),
            col("step_secs", |r| format!("{:.6}", r.step_secs)),
            col("elapsed_secs", |r| format!("{:.6}", r.elapsed_secs)),
            col("redistributed", |r| format!("{}", r.redistributed as u8)),
        ];
        for l in 0..max_levels {
            cols.push(Column {
                name: format!("grids_l{l}"),
                cell: Box::new(move |r| {
                    format!("{}", r.grids_per_level.get(l).copied().unwrap_or(0))
                }),
            });
            cols.push(Column {
                name: format!("cells_l{l}"),
                cell: Box::new(move |r| {
                    format!("{}", r.cells_per_level.get(l).copied().unwrap_or(0))
                }),
            });
        }
        for g in 0..max_groups {
            cols.push(Column {
                name: format!("workload_g{g}"),
                cell: Box::new(move |r| {
                    format!("{:.1}", r.group_workload.get(g).copied().unwrap_or(0.0))
                }),
            });
        }
        cols.push(col("forecast_alpha_mae", |r| {
            format!("{:.6e}", r.forecast.alpha_mae)
        }));
        cols.push(col("forecast_beta_mae", |r| {
            format!("{:.6e}", r.forecast.beta_mae)
        }));
        cols.push(col("forecast_load_mae", |r| {
            format!("{:.3}", r.forecast.load_mae)
        }));
        cols.push(col("retries", |r| format!("{}", r.faults.retries)));
        cols.push(col("aborts", |r| format!("{}", r.faults.aborts)));
        cols.push(col("quarantines", |r| format!("{}", r.faults.quarantines)));
        cols.push(col("readmissions", |r| format!("{}", r.faults.readmissions)));
        cols.push(col("comm_failures", |r| format!("{}", r.faults.comm_failures)));
        cols.push(col("recovery_secs", |r| {
            format!("{:.3}", r.faults.recovery_secs)
        }));
        cols.push(col("crashes", |r| format!("{}", r.recovery.crashes)));
        cols.push(col("rejoins", |r| format!("{}", r.recovery.rejoins)));
        cols.push(col("evacuated_cells", |r| {
            format!("{}", r.recovery.evacuated_cells)
        }));
        cols.push(col("mttr_secs", |r| format!("{:.3}", r.recovery.mttr_secs)));
        cols.push(col("recompute_secs", |r| {
            format!("{:.3}", r.recovery.recompute_secs)
        }));
        cols
    }

    /// CSV with one row per step, rendered from the [`Self::columns`] spec.
    pub fn to_csv(&self) -> String {
        let cols = self.columns();
        let mut out = cols
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for r in &self.records {
            let row: Vec<String> = cols.iter().map(|c| (c.cell)(r)).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// One CSV column: its header name and how to render a record's cell.
struct Column {
    name: String,
    cell: Box<dyn Fn(&StepRecord) -> String>,
}

fn col(name: &str, cell: impl Fn(&StepRecord) -> String + 'static) -> Column {
    Column {
        name: name.to_string(),
        cell: Box::new(cell),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: u64) -> StepRecord {
        StepRecord {
            step,
            step_secs: 1.5,
            elapsed_secs: 1.5 * (step + 1) as f64,
            grids_per_level: vec![2, 5],
            cells_per_level: vec![100, 200],
            group_workload: vec![300.0, 200.0],
            redistributed: step == 1,
            forecast: StepForecast::default(),
            faults: StepFaults::default(),
            recovery: StepRecovery::default(),
        }
    }

    #[test]
    fn csv_shape() {
        let mut t = RunTrace::default();
        t.push(rec(0));
        t.push(rec(1));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("step,step_secs,elapsed_secs,redistributed"));
        assert!(lines[0].contains("grids_l1"));
        assert!(lines[0].contains("workload_g1"));
        assert!(lines[1].starts_with("0,"));
        assert!(lines[2].contains(",1,")); // redistributed flag on step 1
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ragged_records_padded() {
        let mut t = RunTrace::default();
        let mut a = rec(0);
        a.grids_per_level = vec![1];
        a.cells_per_level = vec![50];
        t.push(a);
        t.push(rec(1));
        let csv = t.to_csv();
        let row0: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        let row1: Vec<&str> = csv.lines().nth(2).unwrap().split(',').collect();
        assert_eq!(row0.len(), row1.len());
        // the padded level reads zero
        assert_eq!(row0[6], "0");
    }

    #[test]
    fn fault_columns_ride_at_the_end() {
        let mut t = RunTrace::default();
        t.push(rec(0));
        let mut r = rec(1);
        r.faults = StepFaults {
            retries: 2,
            aborts: 1,
            quarantines: 1,
            readmissions: 0,
            comm_failures: 3,
            recovery_secs: 0.0,
        };
        t.push(r);
        let csv = t.to_csv();
        let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        let n = header.len();
        assert_eq!(header[n - 11..n - 5].join(","),
            "retries,aborts,quarantines,readmissions,comm_failures,recovery_secs");
        let row1: Vec<&str> = csv.lines().nth(2).unwrap().split(',').collect();
        assert_eq!(&row1[row1.len() - 11..row1.len() - 6], &["2", "1", "1", "0", "3"]);
        let totals = t.fault_totals();
        assert_eq!(totals.retries, 2);
        assert_eq!(totals.aborts, 1);
        assert!(totals.any());
        assert!(!rec(0).faults.any());
    }

    #[test]
    fn header_arity_matches_every_row_and_the_spec() {
        let mut t = RunTrace::default();
        let mut a = rec(0);
        a.grids_per_level = vec![1, 2, 3]; // wider than rec()'s two levels
        a.cells_per_level = vec![10, 20, 30];
        t.push(a);
        t.push(rec(1));
        t.push(rec(2));
        let spec_arity = t.columns().len();
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), spec_arity);
        for (i, row) in lines.enumerate() {
            assert_eq!(
                row.split(',').count(),
                spec_arity,
                "row {i} arity != header arity"
            );
        }
    }

    #[test]
    fn forecast_columns_sit_before_the_fault_block() {
        let mut t = RunTrace::default();
        let mut r = rec(0);
        r.forecast = StepForecast {
            alpha_mae: 0.002,
            beta_mae: 3.5e-8,
            load_mae: 120.0,
        };
        t.push(r);
        let csv = t.to_csv();
        let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        let n = header.len();
        assert_eq!(
            header[n - 14..n - 11].join(","),
            "forecast_alpha_mae,forecast_beta_mae,forecast_load_mae"
        );
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row.len(), n);
        assert!(row[n - 14].parse::<f64>().unwrap() > 0.0);
        assert_eq!(row[n - 12], "120.000");
    }

    #[test]
    fn recovery_columns_close_out_the_row() {
        let mut t = RunTrace::default();
        t.push(rec(0));
        let mut r = rec(1);
        r.recovery = StepRecovery {
            crashes: 1,
            rejoins: 0,
            evacuated_cells: 4096,
            mttr_secs: 2.5,
            recompute_secs: 0.75,
        };
        t.push(r);
        let csv = t.to_csv();
        let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        let n = header.len();
        assert_eq!(
            header[n - 5..].join(","),
            "crashes,rejoins,evacuated_cells,mttr_secs,recompute_secs"
        );
        let row1: Vec<&str> = csv.lines().nth(2).unwrap().split(',').collect();
        assert_eq!(&row1[n - 5..n - 2], &["1", "0", "4096"]);
        assert_eq!(row1[n - 2], "2.500");
        assert_eq!(row1[n - 1], "0.750");
        let totals = t.recovery_totals();
        assert_eq!(totals.crashes, 1);
        assert_eq!(totals.evacuated_cells, 4096);
        assert!(totals.any());
        assert!(!rec(0).recovery.any());
    }
}
