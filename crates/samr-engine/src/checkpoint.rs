//! Run-state checkpointing: capture everything needed to continue the
//! *physics* of a run — grid hierarchy with solution data, particle state,
//! workload history, per-level step counts — and resume it later.
//!
//! Simulated timing restarts from zero at the resume point (exactly what a
//! real restart does: the clock starts again, the solution doesn't).

use crate::app::AppState;
use crate::config::RunConfig;
use crate::driver::Driver;
use dlb::WorkloadHistory;
use samr_mesh::checkpoint::HierarchySnapshot;
use samr_solvers::ParticleSet;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a run's physics state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Grid hierarchy: structure, ownership, and solution data.
    pub hierarchy: HierarchySnapshot,
    /// Particle state (AMR64; empty otherwise).
    pub particles: ParticleSet,
    /// The DLB heuristics' history records.
    pub history: WorkloadHistory,
    /// Steps completed per level.
    pub step_count: Vec<u64>,
    /// Total cell updates so far.
    pub cell_updates: u64,
}

impl Checkpoint {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Checkpoint, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl Driver {
    /// Capture the run's physics state.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            hierarchy: samr_mesh::checkpoint::snapshot(self.hierarchy()),
            particles: self.app().particles.clone(),
            history: self.history().clone(),
            step_count: self.step_counts().to_vec(),
            cell_updates: self.cell_updates_so_far(),
        }
    }

    /// Rebuild a driver from a checkpoint, continuing the physics where it
    /// left off on (possibly) a different system or scheme. The checkpoint's
    /// `app`/`n0`/`max_levels` must match `cfg`.
    pub fn resume(sys: topology::DistributedSystem, cfg: RunConfig, ckpt: &Checkpoint) -> Driver {
        assert_eq!(
            ckpt.hierarchy.domain,
            samr_mesh::Region::cube(cfg.n0),
            "checkpoint domain mismatch"
        );
        let max_owner = ckpt
            .hierarchy
            .patches
            .iter()
            .map(|p| p.owner)
            .max()
            .unwrap_or(0);
        assert!(
            max_owner < sys.nprocs(),
            "checkpoint references processor {max_owner} but the system has {}",
            sys.nprocs()
        );
        let mut app = AppState::new(cfg.app, cfg.n0, cfg.seed);
        app.particles = ckpt.particles.clone();
        let hier = samr_mesh::checkpoint::restore(&ckpt.hierarchy);
        assert_eq!(hier.nfields(), app.nfields(), "checkpoint app mismatch");
        Driver::from_parts(
            sys,
            cfg,
            app,
            hier,
            ckpt.history.clone(),
            ckpt.step_count.clone(),
            ckpt.cell_updates,
        )
    }
}
