//! # samr-engine — ENZO-lite
//!
//! The SAMR application driver: recursive sub-cycled integration over the
//! grid hierarchy (Fig. 2 of the paper), data-driven regridding through
//! Berger–Rigoutsos clustering, ghost-zone exchange and inter-level
//! transfers with their communication charged to a simulated distributed
//! system, workload accounting for the DLB heuristics, and the two
//! evaluation workloads (`ShockPool3D`, `AMR64`).

pub mod app;
pub mod checkpoint;
pub mod config;
pub mod driver;
pub mod scheme;
pub mod stats;
pub mod trace;

pub use app::{AppKind, AppState};
pub use config::{RunConfig, RunResult};
pub use checkpoint::Checkpoint;
pub use driver::Driver;
pub use stats::{hierarchy_stats, ownership_spread, HierarchyStats};
pub use trace::{RunTrace, StepFaults, StepForecast, StepRecord, StepRecovery};
pub use scheme::Scheme;
