//! The SAMR driver: recursive sub-cycled integration (Fig. 2 of the paper)
//! with ghost exchange, regridding, restriction, workload accounting, and
//! the DLB hook points of Fig. 4/5 — all on simulated time.
//!
//! Real numerics run on the patch data (so refinement follows the physics);
//! *timing* is charged to the simulator according to grid ownership: solver
//! work to the owning processor, boundary windows and migrations as messages
//! over the links between owners. The driver holds a [`SimView`] rather than
//! owning a simulator, so it runs identically standalone (exclusive view)
//! and as one tenant of a shared substrate clock.

use crate::app::AppState;
use crate::config::{RunConfig, RunResult};
use crate::scheme::SchemeInstance;
use crate::trace::{RunTrace, StepFaults, StepForecast, StepRecord, StepRecovery};
use dlb::{decompose_domain, LbContext, ProcHealth, WorkloadHistory};
use rayon::prelude::*;
use samr_mesh::checkpoint::HierarchySnapshot;
use samr_mesh::cluster::{berger_rigoutsos, ClusterParams};
use samr_mesh::field::Field3;
use samr_mesh::hierarchy::GridHierarchy;
use samr_mesh::interp::{prolong_constant, restrict_average};
use samr_mesh::patch::PatchId;
use samr_mesh::region::Region;
use samr_solvers::par::for_each_task_parallel;
use simnet::{send_with_retry, Activity, SimView};
use topology::{DistributedSystem, ProcId, SimTime};

/// Snapshot of a retired patch's data, used to seed re-created fine grids.
#[derive(Clone, Debug)]
struct OldPatch {
    region: Region,
    owner: usize,
    fields: Vec<Field3>,
}

/// The SAMR execution driver.
pub struct Driver {
    cfg: RunConfig,
    app: AppState,
    sim: SimView,
    hier: GridHierarchy,
    history: WorkloadHistory,
    scheme: SchemeInstance,
    /// Steps completed per level (drives regrid cadence).
    step_count: Vec<u64>,
    /// Stashed data of cleared fine levels, by level.
    old_data: Vec<Vec<OldPatch>>,
    /// Total cell updates executed (the workload measure).
    cell_updates: u64,
    /// Per-step trace.
    trace: RunTrace,
    /// Bulk boundary/regrid transfers that failed even after retries (the
    /// run tolerates them: the receiver advances with stale ghost data).
    failed_transfers: u64,
    /// Successful retries of bulk transfers.
    transfer_retries: u64,
    /// Cumulative fault counters already attributed to step records.
    faults_seen: StepFaults,
    /// Static per-processor weight table (weights are fixed for a run's
    /// lifetime), so hot loops price work without cloning the system.
    proc_weights: Vec<f64>,
    /// Host wall-clock seconds per phase (reset when `run` starts measuring).
    wall: metrics::PhaseWall,
    /// Most grids alive at any point of the run.
    peak_patches: usize,
    /// Cells allocated as window-sized ghost-exchange buffers.
    ghost_buffer_cells: u64,
    /// Cells the clone-based reference exchange would have copied for the
    /// same fills — the allocation the buffered path avoids.
    ghost_clone_cells_avoided: u64,
    /// Liveness edge detector for crash-stop proc faults.
    proc_health: ProcHealth,
    /// Simulated time each currently-dead proc's crash was detected at.
    crashed_at: std::collections::BTreeMap<usize, SimTime>,
    /// Per-step pooled checkpoint crash recovery restores patch data from
    /// (only maintained while the run has proc faults).
    recovery_snapshot: Option<HierarchySnapshot>,
    /// Crash-stop activity of the step in flight, drained into its record.
    recovery_pending: StepRecovery,
    /// Per-crash MTTR samples (crash onset to evacuation complete).
    mttrs: Vec<f64>,
    /// Evacuations that actually moved patches.
    evacuations: u64,
    /// Per-capacity-class count of live patch-field buffers at the last
    /// pool provisioning point (keys are `next_power_of_two` storage
    /// lengths). After each steady-state regrid the driver compares the
    /// hierarchy against this baseline and provisions the pool for any
    /// growth, keeping the zero-alloc steady state through mesh growth no
    /// warm-up projection could foresee.
    pool_class_baseline: std::collections::BTreeMap<usize, u64>,
}

impl Driver {
    /// Build a driver: decompose the level-0 domain over the processors
    /// (proportional to their weights), initialize the application fields,
    /// and construct the initial refinement hierarchy.
    pub fn new(sys: DistributedSystem, cfg: RunConfig) -> Driver {
        Driver::new_on(SimView::new(sys), cfg)
    }

    /// Build a driver over an existing simulator view: exclusive
    /// ([`SimView::new`]) for a standalone run, or a tenant view carved from
    /// a shared [`simnet::SimHandle`] so several drivers advance one clock.
    /// Proc-fault schedules require an exclusive view — a shared substrate
    /// has one global fault timeline, not per-tenant ones.
    pub fn new_on(sim: SimView, cfg: RunConfig) -> Driver {
        let app = AppState::new(cfg.app, cfg.n0, cfg.seed);
        let domain = Region::cube(cfg.n0);
        let mut hier = GridHierarchy::new(
            domain,
            cfg.refine_factor,
            cfg.max_levels,
            app.nfields(),
            app.ghost(),
        );
        // initial decomposition: one slab per processor, weighted
        let shares: Vec<f64> = sim.system().procs().iter().map(|p| p.weight).collect();
        for (region, proc_ix) in decompose_domain(domain, &shares) {
            let id = hier.insert_patch(0, region, None, proc_ix);
            app.init_patch(hier.patch_mut(id));
        }
        let nprocs = sim.system().nprocs();
        let mut d = Driver {
            cfg,
            app,
            sim,
            hier,
            history: WorkloadHistory::new(nprocs),
            scheme: SchemeInstance::Static, // replaced in run()
            step_count: Vec::new(),
            old_data: Vec::new(),
            cell_updates: 0,
            trace: RunTrace::default(),
            failed_transfers: 0,
            transfer_retries: 0,
            faults_seen: StepFaults::default(),
            proc_weights: shares,
            wall: metrics::PhaseWall::default(),
            peak_patches: 0,
            ghost_buffer_cells: 0,
            ghost_clone_cells_avoided: 0,
            proc_health: ProcHealth::new(nprocs),
            crashed_at: Default::default(),
            recovery_snapshot: None,
            recovery_pending: StepRecovery::default(),
            mttrs: Vec::new(),
            evacuations: 0,
            pool_class_baseline: Default::default(),
        };
        d.scheme = d.cfg.scheme.instantiate();
        // the sim owns the run's telemetry handle: the scheme reaches it via
        // LbContext, and sim.reset() clears setup-time records
        d.sim.set_telemetry(d.cfg.telemetry.clone());
        if !d.cfg.proc_faults.is_quiet() {
            d.sim.set_proc_faults(d.cfg.proc_faults.clone());
        }
        d.step_count = vec![0; d.cfg.max_levels];
        d.old_data = vec![Vec::new(); d.cfg.max_levels];
        // build the initial hierarchy: regrid cascade, no timing charged
        // (setup happens before the measured run on all schemes equally)
        for l in 0..d.cfg.max_levels - 1 {
            if d.hier.level_ids(l).is_empty() {
                break;
            }
            d.exchange_ghosts(l);
            d.regrid(l);
        }
        d.peak_patches = d.hier.num_patches();
        d
    }

    /// The simulated system.
    pub fn system(&self) -> &DistributedSystem {
        self.sim.system()
    }

    /// The hierarchy (for inspection/tests).
    pub fn hierarchy(&self) -> &GridHierarchy {
        &self.hier
    }

    /// The simulator view (for inspection/tests).
    pub fn sim(&self) -> &SimView {
        &self.sim
    }

    /// Mutable simulator view — the tenant service charges inter-tenant
    /// migration traffic and remaps group views through this.
    pub fn sim_mut(&mut self) -> &mut SimView {
        &mut self.sim
    }

    /// Decision log of the distributed scheme (empty otherwise).
    pub fn decisions(&self) -> &[dlb::GlobalDecision] {
        self.scheme.decisions()
    }

    /// The workload-history records feeding the DLB heuristics.
    pub fn history(&self) -> &WorkloadHistory {
        &self.history
    }

    /// Per-step trace of the run so far.
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// The application state (particles, wells, criteria).
    pub fn app(&self) -> &AppState {
        &self.app
    }

    /// Steps completed per level.
    pub fn step_counts(&self) -> &[u64] {
        &self.step_count
    }

    /// Cell updates executed so far.
    pub fn cell_updates_so_far(&self) -> u64 {
        self.cell_updates
    }

    /// Host wall-clock seconds per phase so far.
    pub fn phase_wall(&self) -> metrics::PhaseWall {
        self.wall
    }

    /// Most grids alive at any point so far.
    pub fn peak_patch_count(&self) -> usize {
        self.peak_patches.max(self.hier.num_patches())
    }

    /// Cells allocated as window-sized ghost-exchange buffers so far
    /// (zero on the reference data path, which clones instead).
    pub fn ghost_buffer_cells(&self) -> u64 {
        self.ghost_buffer_cells
    }

    /// Cells the clone-based reference exchange would have copied for the
    /// same fills — what the buffered path avoids allocating.
    pub fn ghost_clone_cells_avoided(&self) -> u64 {
        self.ghost_clone_cells_avoided
    }

    /// Assemble a driver from restored parts (checkpoint resume). The
    /// hierarchy is taken as-is — no initial decomposition or regrid cascade
    /// runs, and simulated time starts at zero.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        sys: DistributedSystem,
        cfg: RunConfig,
        app: AppState,
        hier: GridHierarchy,
        history: WorkloadHistory,
        step_count: Vec<u64>,
        cell_updates: u64,
    ) -> Driver {
        let proc_weights: Vec<f64> = sys.procs().iter().map(|p| p.weight).collect();
        let nprocs = sys.nprocs();
        let mut d = Driver {
            scheme: cfg.scheme.instantiate(),
            cfg,
            app,
            sim: SimView::new(sys),
            hier,
            history,
            step_count,
            old_data: Vec::new(),
            cell_updates,
            trace: RunTrace::default(),
            failed_transfers: 0,
            transfer_retries: 0,
            faults_seen: StepFaults::default(),
            proc_weights,
            wall: metrics::PhaseWall::default(),
            peak_patches: 0,
            ghost_buffer_cells: 0,
            ghost_clone_cells_avoided: 0,
            proc_health: ProcHealth::new(nprocs),
            crashed_at: Default::default(),
            recovery_snapshot: None,
            recovery_pending: StepRecovery::default(),
            mttrs: Vec::new(),
            evacuations: 0,
            pool_class_baseline: Default::default(),
        };
        d.sim.set_telemetry(d.cfg.telemetry.clone());
        if !d.cfg.proc_faults.is_quiet() {
            d.sim.set_proc_faults(d.cfg.proc_faults.clone());
        }
        d.old_data = vec![Vec::new(); d.cfg.max_levels];
        d.step_count.resize(d.cfg.max_levels, 0);
        d.peak_patches = d.hier.num_patches();
        d
    }

    /// Execute `cfg.steps` level-0 timesteps and report. Setup (initial
    /// decomposition and hierarchy construction) is excluded from the
    /// measured time — identically for every scheme.
    pub fn run(mut self) -> RunResult {
        self.sim.reset();
        // wall timers restart with simulated time: both exclude setup
        self.wall = metrics::PhaseWall::default();
        let total_cells =
            |h: &GridHierarchy| (0..h.num_levels()).map(|l| h.level_cells(l)).sum::<i64>();
        let cells_at_start = total_cells(&self.hier);
        for i in 0..self.cfg.steps {
            if i == self.cfg.pool_warmup_steps {
                // Free lists are populated; from here on, every field
                // acquisition that allocates counts as a steady-state miss.
                // The mesh keeps growing after warmup (regrid tracks the
                // advancing features), and pool demand scales with cells —
                // so extrapolate the growth rate observed during warmup over
                // the remaining steps and provision that much spare
                // inventory up front (capacity-only until actually used).
                let cells_now = total_cells(&self.hier).max(1);
                let grown = (cells_now as f64 / cells_at_start.max(1) as f64).max(1.0);
                let per_step = (grown - 1.0) / i.max(1) as f64;
                let projected = per_step * (self.cfg.steps - i) as f64;
                // 2× safety margin on the projection: regrid growth is
                // lumpy, and idle spares cost address space, not RSS
                let factor = (2.0 * projected).max(0.5);
                self.hier.pool().mark_steady_with_headroom(factor);
                self.pool_class_baseline = self.live_field_classes();
            }
            self.step_once();
        }
        self.finish()
    }

    /// Advance one level-0 timestep (with all its sub-cycled fine steps and
    /// balancing). Useful for inspecting the hierarchy/decisions mid-run;
    /// callers driving steps manually should `sim` inspect between calls and
    /// end with [`Driver::finish`].
    pub fn step_once(&mut self) {
        let t0 = self.sim.barrier_all();
        if self.sim.has_proc_faults() {
            self.handle_proc_transitions(t0);
            self.refresh_recovery_snapshot();
        }
        let decisions_before = self.scheme.decisions().len();
        let redists_before = self
            .scheme
            .decisions()
            .iter()
            .filter(|d| d.invoked)
            .count();
        self.advance_level(0);
        self.peak_patches = self.peak_patches.max(self.hier.num_patches());
        let t1 = self.sim.barrier_all();
        self.history.record_step_time((t1 - t0).as_secs_f64());

        // a redistribution aborted this step wasted real work — the
        // rollback's cost becomes the δ the next cost evaluation sees
        let abort_delta: f64 = self.scheme.decisions()[decisions_before..]
            .iter()
            .filter(|d| d.aborted)
            .map(|d| d.abort_delta_secs)
            .sum();
        if abort_delta > 0.0 {
            self.history.record_redistribution_overhead(abort_delta);
        }

        // trace record
        let nlevels = self.hier.num_levels();
        let sys = self.sim.system();
        let mut group_workload = vec![0f64; sys.ngroups()];
        for p in self.hier.iter() {
            let w = (self.cfg.refine_factor as f64).powi(p.level as i32);
            group_workload[sys.group_of(ProcId(p.owner)).0] += p.cells() as f64 * w;
        }
        let redists_after = self
            .scheme
            .decisions()
            .iter()
            .filter(|d| d.invoked)
            .count();
        let cum = self.cumulative_faults();
        let prev = self.faults_seen;
        let faults = StepFaults {
            retries: cum.retries - prev.retries,
            aborts: cum.aborts - prev.aborts,
            quarantines: cum.quarantines - prev.quarantines,
            readmissions: cum.readmissions - prev.readmissions,
            comm_failures: cum.comm_failures - prev.comm_failures,
            recovery_secs: cum.recovery_secs - prev.recovery_secs,
        };
        self.faults_seen = cum;
        let fsum = self.scheme.forecast_summary();

        // continuous metrics: one sample per series per level-0 step, on
        // simulated time. Pure observation of already-computed state, so
        // recording stays bit-identical to the null handle.
        let tel = self.sim.telemetry();
        if tel.is_enabled() {
            let t = t1.as_secs_f64();
            // power-normalized inter-group imbalance (max/mean of load per
            // unit of alive power), the ratio the γ-gate reasons about
            let mut norm: Vec<f64> = Vec::with_capacity(group_workload.len());
            for (g, &w) in group_workload.iter().enumerate() {
                let p = self.sim.alive_group_power(topology::GroupId(g));
                tel.metric(t, &format!("group_load:g{g}"), w);
                tel.metric(t, &format!("alive_power:g{g}"), p);
                if p > 0.0 {
                    norm.push(w / p);
                }
            }
            let mean = norm.iter().sum::<f64>() / norm.len().max(1) as f64;
            let imb = if mean > 0.0 {
                norm.iter().cloned().fold(0.0f64, f64::max) / mean
            } else {
                1.0
            };
            tel.metric(t, "imbalance", imb);
            tel.metric(t, "forecast_alpha_mae", fsum.alpha_mae);
            tel.metric(t, "forecast_beta_mae", fsum.beta_mae);
            tel.metric(t, "forecast_load_mae", fsum.load_mae);
            let pool = self.hier.pool().stats();
            tel.metric(t, "pool_hits", pool.hits as f64);
            tel.metric(t, "pool_misses", pool.misses as f64);
            tel.metric(t, "pool_steady_misses", pool.steady_misses as f64);
            tel.metric(t, "procs_down", self.crashed_at.len() as f64);
        }

        self.trace.push(StepRecord {
            step: self.step_count[0].saturating_sub(1),
            step_secs: (t1 - t0).as_secs_f64(),
            elapsed_secs: t1.as_secs_f64(),
            grids_per_level: (0..nlevels).map(|l| self.hier.level_ids(l).len()).collect(),
            cells_per_level: (0..nlevels).map(|l| self.hier.level_cells(l)).collect(),
            group_workload,
            redistributed: redists_after > redists_before,
            forecast: StepForecast {
                alpha_mae: fsum.alpha_mae,
                beta_mae: fsum.beta_mae,
                load_mae: fsum.load_mae,
            },
            faults,
            recovery: std::mem::take(&mut self.recovery_pending),
        });
    }

    /// Crash-stop bookkeeping at a step boundary: observe liveness at `t0`,
    /// evacuate the patches of newly dead procs (reconstructing their data
    /// from the recovery checkpoint and charging the survivors for the lost
    /// sub-steps), and log rejoins — a recovered proc re-enters with zero
    /// load and is refilled by the normal DLB phases.
    fn handle_proc_transitions(&mut self, t0: SimTime) {
        let nprocs = self.sim.system().nprocs();
        let alive: Vec<bool> = (0..nprocs)
            .map(|p| self.sim.alive_at(ProcId(p), t0))
            .collect();
        let trans = self.proc_health.observe(&alive);
        if trans.is_empty() {
            return;
        }
        let step = self.step_count[0];
        let cost = self.cost_per_cell();
        for &p in &trans.crashed {
            let group = self.sim.system().group_of(ProcId(p)).0;
            self.sim.telemetry().event(
                t0.as_secs_f64(),
                telemetry::EventKind::Crash(telemetry::CrashEvent {
                    step,
                    proc: p,
                    group,
                }),
            );
            self.crashed_at.insert(p, t0);
            let report = dlb::evacuate_proc(&mut self.hier, &mut self.sim, ProcId(p), &alive);
            // The dead proc's memory is gone: rebuild each moved patch from
            // the checkpoint and charge its new owner for recomputing the
            // level-0 step the checkpoint is behind by.
            let mut recompute_cells = 0i64;
            let mut recompute_secs = 0.0f64;
            for m in &report.moves {
                self.restore_from_recovery_snapshot(m.patch);
                let iters = (self.cfg.refine_factor as f64).powi(m.level as i32);
                let secs = m.cells as f64 * iters * cost / self.proc_weights[m.to];
                self.sim.compute(ProcId(m.to), secs);
                recompute_cells += m.cells;
                recompute_secs += secs;
            }
            let onset = self.sim.proc_faults().crash_start(p, t0).unwrap_or(t0);
            let done = self.sim.elapsed();
            let mttr = (done - onset).as_secs_f64();
            self.mttrs.push(mttr);
            if !report.is_empty() {
                self.evacuations += 1;
                self.sim.telemetry().event(
                    done.as_secs_f64(),
                    telemetry::EventKind::Evacuate(telemetry::EvacuateEvent {
                        step,
                        proc: p,
                        patches: report.moves.len(),
                        cells: report.evacuated_cells,
                        bytes: report.moved_bytes,
                        intra: report.intra,
                        inter: report.inter,
                        recompute_cells,
                    }),
                );
            }
            self.recovery_pending.crashes += 1;
            self.recovery_pending.evacuated_cells += report.evacuated_cells;
            self.recovery_pending.mttr_secs += mttr;
            self.recovery_pending.recompute_secs += recompute_secs;
        }
        for &p in &trans.rejoined {
            let group = self.sim.system().group_of(ProcId(p)).0;
            let downtime = self
                .crashed_at
                .remove(&p)
                .map(|c| (t0 - c).as_secs_f64())
                .unwrap_or(0.0);
            self.sim.telemetry().event(
                t0.as_secs_f64(),
                telemetry::EventKind::Rejoin(telemetry::RejoinEvent {
                    step,
                    proc: p,
                    group,
                    downtime_secs: downtime,
                }),
            );
            self.recovery_pending.rejoins += 1;
        }
        debug_assert!(self.hier.check_invariants().is_ok());
    }

    /// Overwrite `id`'s fields with checkpointed data wherever the
    /// checkpoint covers it. Patch ids churn with every regrid, so snapshot
    /// patches are matched by level and region overlap; uncovered cells
    /// keep their current values.
    fn restore_from_recovery_snapshot(&mut self, id: PatchId) {
        let Some(snap) = &self.recovery_snapshot else {
            return;
        };
        let (level, region) = {
            let p = self.hier.patch(id);
            (p.level, p.region)
        };
        for sp in snap.patches.iter().filter(|sp| sp.level == level) {
            let w = sp.region.intersect(&region);
            if w.is_empty() {
                continue;
            }
            let patch = self.hier.patch_mut(id);
            for (k, sf) in sp.fields.iter().enumerate() {
                patch.fields[k].copy_from(sf, &w);
            }
        }
    }

    /// Re-take the crash-recovery checkpoint at a step boundary, returning
    /// the replaced snapshot's buffers to the field pool — in steady state
    /// the recurring snapshot allocates nothing.
    fn refresh_recovery_snapshot(&mut self) {
        let pool = self.hier.pool().clone();
        // recycle first, so the new snapshot's acquisitions can hit the
        // buffers the old one just gave back
        if let Some(old) = self.recovery_snapshot.take() {
            old.recycle(&pool);
        }
        self.recovery_snapshot = Some(samr_mesh::checkpoint::snapshot_in(&self.hier, &pool));
    }

    /// Fault counters since the start of the run: the scheme's protocol
    /// counters plus the driver's own bulk-transfer bookkeeping.
    fn cumulative_faults(&self) -> StepFaults {
        let s = self.scheme.fault_stats();
        StepFaults {
            retries: s.retries + self.transfer_retries,
            aborts: s.aborts,
            quarantines: s.quarantines,
            readmissions: s.readmissions,
            comm_failures: s.comm_failures + self.failed_transfers,
            recovery_secs: s.recovery_secs,
        }
    }

    /// Synchronize trailing work and produce the run report.
    pub fn finish(mut self) -> RunResult {
        let total = self.sim.finish();
        self.into_result(total)
    }

    fn into_result(self, total: SimTime) -> RunResult {
        let stats = self.sim.stats();
        let sys = self.sim.system();
        let breakdown = metrics::RunBreakdown {
            total: total.as_secs_f64(),
            compute: stats.max_compute().as_secs_f64(),
            comm: stats.max_comm().as_secs_f64(),
            comm_local: stats
                .procs
                .iter()
                .map(|p| p.local_comm.as_secs_f64())
                .sum::<f64>()
                / sys.nprocs() as f64,
            comm_remote: stats
                .procs
                .iter()
                .map(|p| p.remote_comm.as_secs_f64())
                .sum::<f64>()
                / sys.nprocs() as f64,
            lb: stats.mean_lb_secs(),
            remote_msgs: stats.msgs.remote_msgs,
            remote_bytes: stats.msgs.remote_bytes,
        };
        let scheme_stats = self.scheme.fault_stats();
        let faults = metrics::FaultCounters {
            probe_failures: scheme_stats.probe_failures,
            retries: scheme_stats.retries + self.transfer_retries,
            aborts: scheme_stats.aborts,
            quarantines: scheme_stats.quarantines,
            readmissions: scheme_stats.readmissions,
            comm_failures: scheme_stats.comm_failures + self.failed_transfers,
            recovery_secs: scheme_stats.recovery_secs,
        };
        let fsum = self.scheme.forecast_summary();
        let forecast = metrics::ForecastStats {
            alpha_mae: fsum.alpha_mae,
            beta_mae: fsum.beta_mae,
            load_mae: fsum.load_mae,
            scored_probes: fsum.scored_probes,
            proactive_checks: fsum.proactive_checks,
            proactive_invocations: fsum.proactive_invocations,
        };
        let rt = self.trace.recovery_totals();
        let (mttr_mean, mttr_max) = if self.mttrs.is_empty() {
            (0.0, 0.0)
        } else {
            (
                self.mttrs.iter().sum::<f64>() / self.mttrs.len() as f64,
                self.mttrs.iter().copied().fold(0.0, f64::max),
            )
        };
        let recovery = metrics::RecoveryStats {
            crashes: rt.crashes,
            rejoins: rt.rejoins,
            evacuations: self.evacuations,
            evacuated_cells: rt.evacuated_cells,
            mttr_mean_secs: mttr_mean,
            mttr_max_secs: mttr_max,
            recompute_secs: rt.recompute_secs,
        };
        let pool = self.hier.pool().stats();
        let pd = self.hier.pool().detail();
        self.sim.telemetry().stat_block(
            "field_pool",
            &[
                ("hits", pool.hits),
                ("misses", pool.misses),
                ("bytes_recycled", pool.bytes_recycled),
                ("steady_misses", pool.steady_misses),
                ("home_hits", pd.home_hits),
                ("spill_hits", pd.spill_hits),
                ("steal_hits", pd.steal_hits),
                ("borrow_hits", pd.borrow_hits),
                ("shards_used", pd.shard_hits.iter().filter(|&&h| h > 0).count() as u64),
            ],
        );
        let (estimator_pairs, decision_msgs) = self.scheme.decision_net();
        self.sim.telemetry().stat_block(
            "decision_phase",
            &[
                ("estimator_pairs", estimator_pairs),
                ("decision_msgs", decision_msgs),
            ],
        );
        // Final power-normalized imbalance, from the hierarchy's end state:
        // (max_g W_g/P_g) / (mean_g W_g/P_g) over groups with surviving
        // power. The mean-based ratio stays finite even when a group ends
        // the run empty, so scale sweeps can compare it across runs.
        let final_imbalance = {
            let per_proc = dlb::proc_total_cells(&self.hier, sys.nprocs());
            let mut loads = vec![0.0f64; sys.ngroups()];
            for (p, &cells) in per_proc.iter().enumerate() {
                loads[sys.group_of(ProcId(p)).0] += cells as f64;
            }
            let norms: Vec<f64> = (0..sys.ngroups())
                .filter_map(|g| {
                    let p = self.sim.alive_group_power(topology::GroupId(g));
                    (p > 0.0).then(|| loads[g] / p)
                })
                .collect();
            let mean = norms.iter().sum::<f64>() / norms.len().max(1) as f64;
            if norms.len() < 2 || mean <= 0.0 {
                1.0
            } else {
                norms.iter().copied().fold(0.0, f64::max) / mean
            }
        };
        let decisions = self.scheme.decisions();
        RunResult {
            scheme: self.scheme.name().to_string(),
            system: sys.describe(),
            app: self.cfg.app,
            total_secs: total.as_secs_f64(),
            breakdown,
            steps: self.cfg.steps,
            levels: self.hier.num_levels(),
            final_patches: self.hier.num_patches(),
            peak_patches: self.peak_patches.max(self.hier.num_patches()),
            wall: self.wall,
            cell_updates: self.cell_updates,
            global_checks: decisions.len(),
            global_redistributions: decisions.iter().filter(|d| d.invoked).count(),
            faults,
            forecast,
            recovery,
            pool,
            pool_detail: pd,
            final_imbalance,
            estimator_pairs,
            decision_msgs,
            decisions: decisions
                .iter()
                .map(|d| crate::config::DecisionSummary {
                    step: d.step,
                    gain_secs: d.gain.gain_secs,
                    cost_secs: d.cost.map(|c| c.total_secs()),
                    imbalance: d.gain.imbalance_ratio,
                    invoked: d.invoked,
                    aborted: d.aborted,
                    moved_cells: d.report.as_ref().map(|r| r.moved_cells).unwrap_or(0),
                    group_loads: d.gain.group_loads.clone(),
                })
                .collect(),
            telemetry_summary: self.sim.telemetry().summary(),
        }
    }

    /// One timestep at `level` (Fig. 4 flow): exchange ghosts, solve, regrid
    /// the next finer level, recurse `r` sub-steps into it, restrict, then
    /// hand control to the load balancer.
    fn advance_level(&mut self, level: usize) {
        self.exchange_ghosts(level);
        self.solve_level(level);
        if level == 0 {
            let dt0 = self.app.dt_over_dx0(); // dx0 = 1
            self.app.post_level0_step(dt0, self.hier.domain());
        }

        // regrid: rebuild level+1 from this level's flags
        let may_refine = level + 1 < self.cfg.max_levels;
        if may_refine && self.step_count[level].is_multiple_of(self.cfg.regrid_interval as u64) {
            self.regrid(level);
        }

        // sub-cycle the finer level
        if !self.hier.level_ids(level + 1).is_empty() {
            for _ in 0..self.cfg.refine_factor {
                self.advance_level(level + 1);
            }
            self.restrict_level(level + 1);
        }

        // workload records must be fresh before the level-0 decision
        if level == 0 {
            self.update_history_snapshot();
        }
        let ctx = LbContext {
            hier: &mut self.hier,
            sim: &mut self.sim,
            history: &mut self.history,
        };
        // A fault-tolerant scheme absorbs link failures itself; a baseline
        // scheme without a degraded mode skips this step's balancing when
        // its load exchange dies. Either way the run continues.
        {
            let t0 = std::time::Instant::now();
            let _span = telemetry::span!(self.cfg.telemetry, "decision", level);
            if self.scheme.after_level_step(ctx, level).is_err() {
                self.failed_transfers += 1;
            }
            self.wall.decision += t0.elapsed().as_secs_f64();
        }
        self.step_count[level] += 1;
    }

    /// Ship one aggregated boundary/regrid payload between owners, retrying
    /// per the run's comm policy. A transfer that still fails is tolerated —
    /// the receiver advances with stale ghost data — and counted.
    fn send_batch(&mut self, src: usize, dst: usize, bytes: u64) {
        let (s, d) = (ProcId(src), ProcId(dst));
        let act = if self.sim.system().group_of(s) == self.sim.system().group_of(d) {
            Activity::LocalComm
        } else {
            Activity::RemoteComm
        };
        let (retries, res) =
            send_with_retry(&mut self.sim, s, d, bytes, act, None, self.cfg.comm_retry);
        if res.is_ok() {
            self.transfer_retries += retries as u64;
        } else {
            self.failed_transfers += 1;
        }
    }

    /// Effective per-cell compute cost (config override or app default).
    fn cost_per_cell(&self) -> f64 {
        self.cfg.cost_per_cell.unwrap_or_else(|| self.app.cost_per_cell())
    }

    /// Record `w_proc^i(t)` and `N_iter^i(t)` for the gain heuristic.
    fn update_history_snapshot(&mut self) {
        let nprocs = self.sim.system().nprocs();
        let nlevels = self.hier.num_levels();
        let loads: Vec<Vec<i64>> = (0..nlevels)
            .map(|l| self.hier.level_load_by_owner(l, nprocs))
            .collect();
        let n_iter: Vec<u32> = (0..nlevels)
            .map(|l| (self.cfg.refine_factor as u32).pow(l as u32))
            .collect();
        self.history.record_snapshot(loads, n_iter);
    }

    /// Solve every grid at `level` once. Real numerics run with rayon
    /// across patches; simulated compute time is charged to each owner.
    fn solve_level(&mut self, level: usize) {
        let ids: Vec<PatchId> = self.hier.level_ids(level).to_vec();
        if ids.is_empty() {
            return;
        }
        let t0 = std::time::Instant::now();
        let _span = telemetry::span!(self.cfg.telemetry, "solve", level);
        let dt_over_dx = self.app.dt_over_dx0(); // constant Courant per level
        // take the field data out, step in parallel, put it back
        let mut work: Vec<(PatchId, Vec<Field3>)> = ids
            .iter()
            .map(|&id| (id, std::mem::take(&mut self.hier.patch_mut(id).fields)))
            .collect();
        let app = &self.app;
        let reference = self.cfg.reference_datapath;
        // each rayon worker acquires/recycles solver scratch through a
        // handle bound to its own pool shard — no shared lock on the hot path
        let pool = self.hier.pool().clone();
        work.par_iter_mut().for_each(|(_, fields)| {
            let handle = pool.worker_handle();
            if reference {
                app.step_patch_reference(fields, dt_over_dx, &handle);
            } else {
                app.step_patch(fields, dt_over_dx, &handle);
            }
        });
        for (id, fields) in work {
            self.hier.patch_mut(id).fields = fields;
        }
        // charge simulated solver time per owner
        let cost = self.cost_per_cell();
        for &id in &ids {
            let p = self.hier.patch(id);
            let weight = self.proc_weights[p.owner];
            let secs = p.cells() as f64 * cost / weight;
            self.sim.compute(ProcId(p.owner), secs);
            self.cell_updates += p.cells() as u64;
        }
        self.wall.solve += t0.elapsed().as_secs_f64();
    }

    /// Fill ghost zones at `level`: physical boundaries by zero-gradient,
    /// interior boundaries from siblings, the rest from the parent grids.
    /// Data really moves, and each inter-owner window is charged as a
    /// message.
    ///
    /// This is the direct zero-copy path: no staging buffer is allocated at
    /// all. Parent prolongation reads the coarser level's fields in place
    /// (that level is untouched by a fine-level exchange) and sibling
    /// windows are copied source→destination through a pair borrow. It is
    /// bit-identical to [`Driver::exchange_ghosts_reference`] because every
    /// read comes from data the exchange never writes: sibling windows lie
    /// inside source *interiors* (all three phases write only ghost cells)
    /// and parent fields live on the untouched coarser level, so dropping
    /// the reference path's staging clones changes no value, and applying
    /// the overlaps in topology order preserves the per-destination write
    /// order wherever two windows overlap.
    fn exchange_ghosts(&mut self, level: usize) {
        if self.cfg.reference_datapath {
            let t0 = std::time::Instant::now();
            let _span = telemetry::span!(self.cfg.telemetry, "ghost_exchange", level);
            self.exchange_ghosts_reference(level);
            self.wall.ghost += t0.elapsed().as_secs_f64();
            return;
        }
        let ids: Vec<PatchId> = self.hier.level_ids(level).to_vec();
        if ids.is_empty() {
            return;
        }
        let t0 = std::time::Instant::now();
        let _span = telemetry::span!(self.cfg.telemetry, "ghost_exchange", level);
        let nf = self.hier.nfields();
        let r = self.hier.refine_factor();
        let topo = self.hier.exchange_topology(level);

        let mut dst_ix: std::collections::BTreeMap<PatchId, usize> = Default::default();
        for (i, &id) in ids.iter().enumerate() {
            dst_ix.insert(id, i);
        }
        let parent_of: Vec<Option<PatchId>> =
            ids.iter().map(|&id| self.hier.patch(id).parent).collect();

        // message accounting, same entries and values as the reference path
        let mut batch: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
        if level > 0 {
            for (i, &id) in ids.iter().enumerate() {
                let p = self.hier.patch(id);
                let parent_owner = self
                    .hier
                    .patch(p.parent.expect("fine patch has parent"))
                    .owner;
                let shell_cells: i64 = topo.shells[i].boxes.iter().map(|b| b.cells()).sum();
                if parent_owner != p.owner {
                    *batch.entry((parent_owner, p.owner)).or_default() +=
                        (shell_cells as u64) * 8 * nf as u64;
                }
            }
        }
        for o in &topo.overlaps {
            let src_owner = self.hier.patch(o.src).owner;
            let dst_owner = self.hier.patch(o.dst).owner;
            if src_owner != dst_owner {
                *batch.entry((src_owner, dst_owner)).or_default() +=
                    (o.cells as u64) * 8 * nf as u64;
            }
        }

        // bookkeeping: what the clone-based reference path would have
        // copied and the direct path reads in place instead
        if level > 0 {
            for &id in &ids {
                let parent_id = self.hier.patch(id).parent.expect("fine patch has parent");
                let parent = self.hier.patch(parent_id);
                self.ghost_clone_cells_avoided +=
                    (parent.fields[0].storage_region().cells() as u64) * nf as u64;
            }
        }
        let mut seen: std::collections::BTreeSet<PatchId> = Default::default();
        for o in &topo.overlaps {
            if seen.insert(o.src) {
                let sp = self.hier.patch(o.src);
                self.ghost_clone_cells_avoided +=
                    (sp.fields[0].storage_region().cells() as u64) * nf as u64;
            }
        }

        // phase 1: per destination — zero-gradient default, then parent
        // prolongation straight from the parent's fields. Parallel across
        // destinations: each writes only its own ghost cells, and the
        // parents live on the coarser level, which stays in the hierarchy
        // (only `level`'s fields are taken out) and is never written here.
        let mut work: Vec<(PatchId, Vec<Field3>)> = ids
            .iter()
            .map(|&id| (id, std::mem::take(&mut self.hier.patch_mut(id).fields)))
            .collect();
        let hier = &self.hier;
        let topo_ref = &topo;
        let parent_ref = &parent_of;
        for_each_task_parallel(&mut work, |i, (_, fields)| {
            for f in fields.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
            if level > 0 {
                let parent = hier.patch(parent_ref[i].expect("fine patch has parent"));
                for b in &topo_ref.shells[i].boxes {
                    for (k, pf) in parent.fields.iter().enumerate() {
                        prolong_constant(pf, &mut fields[k], b, r);
                    }
                }
            }
        });

        // phase 2: sibling windows, source→destination directly via a pair
        // borrow. Sources are authoritative interiors, which no phase
        // writes, so the values match the reference path's staged clones;
        // topology order preserves its per-destination overwrite order.
        for o in &topo.overlaps {
            let si = dst_ix[&o.src];
            let di = dst_ix[&o.dst];
            debug_assert_ne!(si, di, "self-overlap in sibling topology");
            let (src, dst) = if si < di {
                let (a, b) = work.split_at_mut(di);
                (&a[si].1, &mut b[0].1)
            } else {
                let (a, b) = work.split_at_mut(si);
                (&b[0].1, &mut a[di].1)
            };
            for (k, sf) in src.iter().enumerate() {
                dst[k].copy_from(sf, &o.window);
            }
        }
        for (id, fields) in work {
            self.hier.patch_mut(id).fields = fields;
        }

        for ((src, dst), bytes) in batch {
            self.send_batch(src, dst, bytes);
        }
        self.wall.ghost += t0.elapsed().as_secs_f64();
    }

    /// Clone-based reference ghost exchange: the original sequential
    /// three-phase data path, kept verbatim so the zero-clone path above can
    /// be proven bit-identical against it (`cfg.reference_datapath`).
    fn exchange_ghosts_reference(&mut self, level: usize) {
        let ids: Vec<PatchId> = self.hier.level_ids(level).to_vec();
        if ids.is_empty() {
            return;
        }
        let nf = self.hier.nfields();
        let ghost = self.hier.ghost();

        // 1) physical-boundary default
        for &id in &ids {
            for f in self.hier.patch_mut(id).fields.iter_mut() {
                f.fill_ghosts_zero_gradient();
            }
        }

        // 2) parent fill (level > 0): prolong the parent's data into the
        // ghost shell (sibling windows are overwritten afterwards, which is
        // the standard fill order).
        let mut batch: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
        if level > 0 {
            let r = self.hier.refine_factor();
            for &id in &ids {
                let (parent_id, region, owner) = {
                    let p = self.hier.patch(id);
                    (p.parent.expect("fine patch has parent"), p.region, p.owner)
                };
                let pool = self.hier.pool().clone();
                let parent = self.hier.patch(parent_id);
                let parent_owner = parent.owner;
                let parent_fields: Vec<Field3> =
                    parent.fields.iter().map(|f| f.clone_in(&pool)).collect();
                let shell_boxes = region.grow(ghost).subtract(&region);
                let mut shell_cells = 0i64;
                {
                    let patch = self.hier.patch_mut(id);
                    for (k, pf) in parent_fields.iter().enumerate() {
                        for b in &shell_boxes {
                            prolong_constant(pf, &mut patch.fields[k], b, r);
                        }
                    }
                }
                for f in parent_fields {
                    f.recycle(&pool);
                }
                for b in &shell_boxes {
                    shell_cells += b.cells();
                }
                if parent_owner != owner {
                    *batch.entry((parent_owner, owner)).or_default() +=
                        (shell_cells as u64) * 8 * nf as u64;
                }
            }
        }

        // 3) sibling windows (authoritative where available)
        let overlaps = self.hier.sibling_overlaps(level);
        if !overlaps.is_empty() {
            // snapshot source fields once per source patch (pooled copies,
            // returned to the pool once every window is applied)
            let pool = self.hier.pool().clone();
            let mut srcs: std::collections::BTreeMap<PatchId, Vec<Field3>> = Default::default();
            for o in &overlaps {
                srcs.entry(o.src).or_insert_with(|| {
                    self.hier
                        .patch(o.src)
                        .fields
                        .iter()
                        .map(|f| f.clone_in(&pool))
                        .collect()
                });
            }
            for o in &overlaps {
                let src_owner = self.hier.patch(o.src).owner;
                let dst_owner = self.hier.patch(o.dst).owner;
                let sf = &srcs[&o.src];
                let patch = self.hier.patch_mut(o.dst);
                for (k, f) in sf.iter().enumerate() {
                    patch.fields[k].copy_from(f, &o.window);
                }
                if src_owner != dst_owner {
                    *batch.entry((src_owner, dst_owner)).or_default() +=
                        (o.cells as u64) * 8 * nf as u64;
                }
            }
            for (_, fields) in srcs {
                for f in fields {
                    f.recycle(&pool);
                }
            }
        }

        // One aggregated message per communicating owner pair — matching how
        // MPI SAMR codes pack all boundary windows for a neighbour rank into
        // a single send per phase.
        for ((src, dst), bytes) in batch {
            self.send_batch(src, dst, bytes);
        }
    }

    /// Rebuild `level + 1` from the flags of `level`'s grids: flag, buffer,
    /// cluster (Berger–Rigoutsos), place via the DLB scheme, prolong from
    /// parents, then copy surviving data from the retired fine grids.
    fn regrid(&mut self, level: usize) {
        let t0 = std::time::Instant::now();
        let _span = telemetry::span!(self.cfg.telemetry, "regrid", level);
        self.regrid_inner(level);
        if self.hier.pool().is_steady() {
            self.provision_pool_for_growth();
        }
        self.wall.regrid += t0.elapsed().as_secs_f64();
        self.peak_patches = self.peak_patches.max(self.hier.num_patches());
    }

    /// Per-capacity-class counts of the hierarchy's live patch-field
    /// buffers (keyed by `next_power_of_two` storage length).
    fn live_field_classes(&self) -> std::collections::BTreeMap<usize, u64> {
        let ghost = self.hier.ghost();
        let nf = self.hier.nfields() as u64;
        let mut classes: std::collections::BTreeMap<usize, u64> = Default::default();
        for p in self.hier.iter() {
            let len = (p.region.grow(ghost).cells() as usize).max(1).next_power_of_two();
            *classes.entry(len).or_default() += nf;
        }
        classes
    }

    /// Measurement-driven steady-state headroom: wherever a regrid grew a
    /// capacity class beyond its provisioning baseline, shelve twice the
    /// growth as pool spares — the new live buffers' worth plus the same
    /// again for the regrid stash, which holds the previous generation of
    /// the level alive until the next regrid retires it. Doubling the
    /// *delta* (never the whole inventory) keeps the reservation
    /// proportional to actual growth; spares are capacity-only until used.
    fn provision_pool_for_growth(&mut self) {
        let now = self.live_field_classes();
        let pool = self.hier.pool().clone();
        for (len, n) in now {
            let base = self.pool_class_baseline.entry(len).or_insert(0);
            if n > *base {
                pool.provision(len, 2 * (n - *base));
                *base = n;
            }
        }
    }

    fn regrid_inner(&mut self, level: usize) {
        let r = self.hier.refine_factor();
        let ids: Vec<PatchId> = self.hier.level_ids(level).to_vec();

        // flag + cluster per parent grid
        let cluster = ClusterParams {
            min_efficiency: 0.7,
            min_box_cells: 4,
            max_depth: 64,
            max_box_cells: self.cfg.max_box_cells,
        };
        let mut parents: Vec<usize> = Vec::new();
        let mut parent_ids: Vec<PatchId> = Vec::new();
        let mut regions: Vec<Region> = Vec::new();
        let mut flag_cost_cells = 0i64;
        for &id in &ids {
            let p = self.hier.patch(id);
            let owner = p.owner;
            flag_cost_cells += p.cells();
            let mut flags = self.app.flag_patch(p, self.hier.pool());
            flags.buffer(self.cfg.flag_buffer);
            for coarse_box in berger_rigoutsos(&flags, &cluster) {
                parents.push(owner);
                parent_ids.push(id);
                regions.push(coarse_box.refine(r));
            }
        }
        // charge flag/cluster work to the owners (part of adaptation)
        let cost = self.cost_per_cell() * 0.15;
        for &id in &ids {
            let p = self.hier.patch(id);
            let secs = p.cells() as f64 * cost / self.proc_weights[p.owner];
            self.sim.compute(ProcId(p.owner), secs);
        }
        let _ = flag_cost_cells;

        // stash the data of every level being cleared; the patches are about
        // to be dropped, so take their fields instead of cloning. The stash
        // this one replaces has outlived its use (it seeded the previous
        // regrid's grids), so its buffers go back to the pool.
        let pool = self.hier.pool().clone();
        for l in (level + 1)..self.hier.num_levels() {
            let lvl_ids: Vec<PatchId> = self.hier.level_ids(l).to_vec();
            let mut stash = Vec::new();
            for id in lvl_ids {
                let p = self.hier.patch_mut(id);
                stash.push(OldPatch {
                    region: p.region,
                    owner: p.owner,
                    fields: std::mem::take(&mut p.fields),
                });
            }
            for op in std::mem::replace(&mut self.old_data[l], stash) {
                for f in op.fields {
                    f.recycle(&pool);
                }
            }
        }
        if self.hier.num_levels() > level + 1 {
            self.hier.clear_levels_from(level + 1);
        }
        if regions.is_empty() {
            return;
        }

        // placement decided by the DLB scheme
        let sizes: Vec<i64> = regions.iter().map(|r| r.cells()).collect();
        let owners =
            self.scheme
                .place_new_patches(&self.hier, self.sim.system(), level + 1, &parents, &sizes);

        // create patches: prolong from parent, then copy overlapping old data
        let nf = self.hier.nfields();
        let mut batch: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
        for ((region, parent_id), (&owner, &parent_owner)) in regions
            .into_iter()
            .zip(parent_ids)
            .zip(owners.iter().zip(parents.iter()))
        {
            // creation and prolongation fused: the child's pooled buffers
            // are filled directly by parent -> child prolongation over the
            // full storage volume, with no intermediate zero fill
            let id = self.hier.insert_refined_patch(level + 1, region, parent_id, owner);
            if parent_owner != owner {
                *batch.entry((parent_owner, owner)).or_default() +=
                    self.hier.patch(id).payload_bytes();
            }
            // copy from retired fine grids where they overlapped
            let old = std::mem::take(&mut self.old_data[level + 1]);
            for op in &old {
                let w = op.region.intersect(&region);
                if w.is_empty() {
                    continue;
                }
                let patch = self.hier.patch_mut(id);
                for (k, f) in op.fields.iter().enumerate() {
                    patch.fields[k].copy_from(f, &w);
                }
                if op.owner != owner {
                    *batch.entry((op.owner, owner)).or_default() +=
                        (w.cells() as u64) * 8 * nf as u64;
                }
            }
            self.old_data[level + 1] = old;
        }
        for ((src, dst), bytes) in batch {
            self.send_batch(src, dst, bytes);
        }
        debug_assert!(self.hier.check_invariants().is_ok());
    }

    /// Project the fine solution onto the parents (conservative average) and
    /// charge child→parent messages where owners differ.
    ///
    /// Children are grouped by parent and the groups run in parallel: two
    /// siblings with non-`r`-aligned regions can both touch a shared coarse
    /// cell after outer coarsening, so per-child parallelism would race, but
    /// distinct parents have disjoint storage. Within a group the children
    /// keep level-id order, so the result is bit-identical to the sequential
    /// reference.
    fn restrict_level(&mut self, fine_level: usize) {
        if self.cfg.reference_datapath {
            let t0 = std::time::Instant::now();
            let _span = telemetry::span!(self.cfg.telemetry, "restrict", fine_level);
            self.restrict_level_reference(fine_level);
            self.wall.restrict += t0.elapsed().as_secs_f64();
            return;
        }
        let t0 = std::time::Instant::now();
        let _span = telemetry::span!(self.cfg.telemetry, "restrict", fine_level);
        let ids: Vec<PatchId> = self.hier.level_ids(fine_level).to_vec();
        let r = self.hier.refine_factor();
        let nf = self.hier.nfields();
        let mut batch: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
        let mut group_of: std::collections::BTreeMap<PatchId, usize> = Default::default();
        let mut groups: Vec<(PatchId, Vec<(PatchId, Region)>)> = Vec::new();
        for &id in &ids {
            let p = self.hier.patch(id);
            let parent_id = p.parent.expect("fine patch has parent");
            let owner = p.owner;
            let coarse_window = p.region.coarsen(r);
            let gi = *group_of.entry(parent_id).or_insert_with(|| {
                groups.push((parent_id, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push((id, coarse_window));
            let parent_owner = self.hier.patch(parent_id).owner;
            if parent_owner != owner {
                *batch.entry((owner, parent_owner)).or_default() +=
                    (coarse_window.cells() as u64) * 8 * nf as u64;
            }
        }
        // take each parent's fields out, restrict its children into them in
        // parallel across parents (children are read in place), put back
        let mut work: Vec<(PatchId, Vec<Field3>)> = groups
            .iter()
            .map(|(pid, _)| (*pid, std::mem::take(&mut self.hier.patch_mut(*pid).fields)))
            .collect();
        let hier = &self.hier;
        let groups_ref = &groups;
        for_each_task_parallel(&mut work, |gi, (_, pfields)| {
            for (child, cw) in &groups_ref[gi].1 {
                let cp = hier.patch(*child);
                for (k, cf) in cp.fields.iter().enumerate() {
                    restrict_average(cf, &mut pfields[k], cw, r);
                }
            }
        });
        for (pid, fields) in work {
            self.hier.patch_mut(pid).fields = fields;
        }
        for ((src, dst), bytes) in batch {
            self.send_batch(src, dst, bytes);
        }
        self.wall.restrict += t0.elapsed().as_secs_f64();
    }

    /// Clone-based reference restriction (the original sequential data
    /// path), kept for the bit-identity proof (`cfg.reference_datapath`).
    fn restrict_level_reference(&mut self, fine_level: usize) {
        let ids: Vec<PatchId> = self.hier.level_ids(fine_level).to_vec();
        let r = self.hier.refine_factor();
        let nf = self.hier.nfields();
        let mut batch: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
        let pool = self.hier.pool().clone();
        for &id in &ids {
            let (parent_id, region, owner) = {
                let p = self.hier.patch(id);
                (p.parent.expect("fine patch has parent"), p.region, p.owner)
            };
            let child_fields: Vec<Field3> = self
                .hier
                .patch(id)
                .fields
                .iter()
                .map(|f| f.clone_in(&pool))
                .collect();
            let coarse_window = region.coarsen(r);
            let parent = self.hier.patch_mut(parent_id);
            let parent_owner = parent.owner;
            for (k, cf) in child_fields.iter().enumerate() {
                restrict_average(cf, &mut parent.fields[k], &coarse_window, r);
            }
            for f in child_fields {
                f.recycle(&pool);
            }
            if parent_owner != owner {
                *batch.entry((owner, parent_owner)).or_default() +=
                    (coarse_window.cells() as u64) * 8 * nf as u64;
            }
        }
        for ((src, dst), bytes) in batch {
            self.send_batch(src, dst, bytes);
        }
    }
}
