//! # metrics — measurements and reporting for the experiments
//!
//! Implements the paper's §5 metrics (efficiency `E(1)/(E·P)`, relative
//! improvement) and the row/table formatting used by the figure harnesses.

pub mod efficiency;
pub mod report;
pub mod stats;

pub use efficiency::{efficiency, improvement_percent, speedup};
pub use stats::{geometric_mean, percentile_exact, slope, summarize, Summary};
pub use report::{
    ConfigRow, FaultCounters, ForecastStats, PhaseWall, RecoveryStats, RunBreakdown, Table,
    TenantStats,
};
