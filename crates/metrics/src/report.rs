//! Experiment rows and table rendering used by the figure harnesses.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Time breakdown of one run (seconds of simulated time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunBreakdown {
    /// Total (wall) execution time.
    pub total: f64,
    /// Max-over-processors compute time.
    pub compute: f64,
    /// Max-over-processors communication time (local + remote).
    pub comm: f64,
    /// Mean local-communication seconds.
    pub comm_local: f64,
    /// Mean remote-communication seconds.
    pub comm_remote: f64,
    /// Mean load-balance overhead seconds.
    pub lb: f64,
    /// Remote messages sent.
    pub remote_msgs: u64,
    /// Remote bytes shipped.
    pub remote_bytes: u64,
}

/// Host wall-clock seconds per driver phase. Unlike [`RunBreakdown`] these
/// are *real* seconds spent executing the numerics on the machine running
/// the simulation — the hot-path throughput measure the `hotpath` benchmark
/// reports — not simulated testbed time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseWall {
    /// Solver kernels (all levels).
    pub solve: f64,
    /// Ghost exchange: zero-gradient fill, parent prolongation, sibling
    /// window copies.
    pub ghost: f64,
    /// Regridding: flagging, clustering, placement, data transfer.
    pub regrid: f64,
    /// Fine-to-coarse restriction.
    pub restrict: f64,
    /// Load-balancing decision phase: the scheme's `after_level_step`
    /// (global γ-gated checks plus local balancing) — the host-side cost
    /// the hierarchical tree reduction keeps sublinear in group count.
    #[serde(default)]
    pub decision: f64,
}

impl PhaseWall {
    /// Sum over the phases.
    pub fn total(&self) -> f64 {
        self.solve + self.ghost + self.regrid + self.restrict + self.decision
    }
}

/// Fault-protocol counters of one run: how often the degradation policy
/// (retry, quarantine, rollback) had to act, and how long recoveries took.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Inter-group probes that failed after exhausting retries.
    pub probe_failures: u64,
    /// Successful retries of probes and decision collectives.
    pub retries: u64,
    /// Global redistributions aborted and rolled back.
    pub aborts: u64,
    /// Groups placed in quarantine.
    pub quarantines: u64,
    /// Quarantined groups re-admitted after a probation probe.
    pub readmissions: u64,
    /// Failed collectives / tolerated failed boundary transfers.
    pub comm_failures: u64,
    /// Total simulated seconds groups spent quarantined before re-admission.
    pub recovery_secs: f64,
}

/// Crash-stop recovery counters of one run: crashes detected, patches
/// evacuated, and how quickly the system absorbed each failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Crash-stop process failures detected.
    pub crashes: u64,
    /// Crashed procs that recovered and re-entered with zero load.
    pub rejoins: u64,
    /// Evacuations performed (one per crash with owned patches).
    pub evacuations: u64,
    /// Level-0-equivalent cells reassigned away from dead procs.
    pub evacuated_cells: i64,
    /// Mean simulated seconds from crash onset to evacuation complete.
    pub mttr_mean_secs: f64,
    /// Worst-case simulated seconds from crash onset to evacuation complete.
    pub mttr_max_secs: f64,
    /// Simulated seconds of recomputation charged for restoring evacuated
    /// patches from the last checkpoint (the recovery δ).
    pub recompute_secs: f64,
}

/// Forecast-quality counters of one run: how well the network-weather
/// predictors tracked reality, and how often the load forecast triggered a
/// proactive global check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ForecastStats {
    /// Mean α forecast MAE over the scored link series (seconds).
    pub alpha_mae: f64,
    /// Mean β forecast MAE over the scored link series (s/byte).
    pub beta_mae: f64,
    /// Mean group-load forecast MAE over the scored series (cells).
    pub load_mae: f64,
    /// Out-of-sample (forecast, probe) pairs scored across link series.
    pub scored_probes: u64,
    /// Global checks triggered proactively by the load forecast.
    pub proactive_checks: u64,
    /// Proactive checks that went on to invoke a redistribution.
    pub proactive_invocations: u64,
}

/// Per-tenant outcome of one multi-tenant service run on a shared
/// substrate clock.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant index within the service.
    pub tenant: usize,
    /// Admission priority weight.
    pub priority: f64,
    /// Global group ids the tenant finished on.
    pub groups: Vec<usize>,
    /// Level-0 steps completed.
    pub steps: u64,
    /// Cell updates executed by this tenant.
    pub cell_updates: u64,
    /// Total simulated seconds from the tenant's view.
    pub total_secs: f64,
    /// Median per-step simulated latency, seconds.
    pub p50_step_secs: f64,
    /// 99th-percentile per-step simulated latency, seconds.
    pub p99_step_secs: f64,
    /// Whole-tenant migrations performed on this tenant.
    pub migrations: u64,
}

impl TenantStats {
    /// Aggregate cell-update throughput over simulated time (updates/sec).
    pub fn cell_updates_per_sec(&self) -> f64 {
        if self.total_secs > 0.0 {
            self.cell_updates as f64 / self.total_secs
        } else {
            0.0
        }
    }
}

/// One configuration row of a figure (e.g. "4 + 4").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfigRow {
    /// Label like "4+4" or "8".
    pub config: String,
    /// Named measurements, insertion-ordered (e.g. scheme → seconds).
    pub values: Vec<(String, f64)>,
}

impl ConfigRow {
    pub fn new(config: impl Into<String>) -> Self {
        ConfigRow {
            config: config.into(),
            values: Vec::new(),
        }
    }

    pub fn push(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.values.push((name.into(), value));
        self
    }

    /// Value by series name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A whole figure/table: rows of configurations × named series.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table {
    pub title: String,
    pub rows: Vec<ConfigRow>,
}

impl Table {
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, row: ConfigRow) {
        self.rows.push(row);
    }

    /// Series names in first-appearance order.
    pub fn series(&self) -> Vec<String> {
        let mut names = Vec::new();
        for r in &self.rows {
            for (n, _) in &r.values {
                if !names.contains(n) {
                    names.push(n.clone());
                }
            }
        }
        names
    }

    /// Column of one series, ordered by rows (NaN where absent).
    pub fn column(&self, name: &str) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| r.get(name).unwrap_or(f64::NAN))
            .collect()
    }

    /// Render as an aligned text table (column widths fit the headers).
    pub fn render(&self) -> String {
        let series = self.series();
        let widths: Vec<usize> = series.iter().map(|s| s.len().max(10) + 2).collect();
        let cfg_w = self
            .rows
            .iter()
            .map(|r| r.config.len())
            .max()
            .unwrap_or(6)
            .max(6)
            + 2;
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:<cfg_w$}", "config");
        for (s, w) in series.iter().zip(&widths) {
            let _ = write!(out, "{s:>w$}", w = *w);
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:<cfg_w$}", r.config);
            for (s, w) in series.iter().zip(&widths) {
                match r.get(s) {
                    Some(v) => {
                        let _ = write!(out, "{v:>w$.3}", w = *w);
                    }
                    None => {
                        let _ = write!(out, "{:>w$}", "-", w = *w);
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// JSON serialization for machine consumption.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig. 7 (AMR64)");
        let mut r = ConfigRow::new("2+2");
        r.push("parallel DLB", 100.0);
        r.push("distributed DLB", 80.0);
        t.push(r);
        let mut r = ConfigRow::new("4+4");
        r.push("parallel DLB", 70.0);
        r.push("distributed DLB", 40.0);
        t.push(r);
        t
    }

    #[test]
    fn series_and_columns() {
        let t = sample();
        assert_eq!(t.series(), vec!["parallel DLB", "distributed DLB"]);
        assert_eq!(t.column("parallel DLB"), vec![100.0, 70.0]);
        assert_eq!(t.rows[1].get("distributed DLB"), Some(40.0));
        assert!(t.column("missing")[0].is_nan());
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Fig. 7"));
        assert!(s.contains("2+2"));
        assert!(s.contains("parallel DLB"));
        assert!(s.contains("40.000"));
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let j = t.to_json();
        let back: Table = serde_json::from_str(&j).unwrap();
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.rows[0].get("parallel DLB"), Some(100.0));
    }
}
