//! The paper's §5 performance metrics.

/// Efficiency as defined in §5: `efficiency = E(1) / (E · P)` where `E(1)`
/// is the sequential execution time, `E` the execution time on the system,
/// and `P` the sum of each processor's performance relative to the
/// sequential processor (equal to the processor count on homogeneous
/// systems).
pub fn efficiency(sequential_secs: f64, parallel_secs: f64, total_power: f64) -> f64 {
    assert!(sequential_secs > 0.0 && parallel_secs > 0.0 && total_power > 0.0);
    sequential_secs / (parallel_secs * total_power)
}

/// Plain speedup `E(1)/E`.
pub fn speedup(sequential_secs: f64, parallel_secs: f64) -> f64 {
    assert!(sequential_secs > 0.0 && parallel_secs > 0.0);
    sequential_secs / parallel_secs
}

/// Relative improvement of `new` over `base`, in percent:
/// `(base − new)/base · 100` — the quantity behind "the execution time can
/// be reduced by 9%–46%".
pub fn improvement_percent(base: f64, new: f64) -> f64 {
    assert!(base > 0.0);
    (base - new) / base * 100.0
}

/// Relative *increase* of `new` over `base`, in percent — used for the
/// efficiency comparisons of Fig. 8 ("efficiency is improved by
/// 9.9%–84.8%").
pub fn increase_percent(base: f64, new: f64) -> f64 {
    assert!(base > 0.0);
    (new - base) / base * 100.0
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_perfect_scaling_is_one() {
        assert!((efficiency(100.0, 12.5, 8.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_degrades_with_overhead() {
        let e = efficiency(100.0, 25.0, 8.0);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_with_heterogeneous_power() {
        // 4 procs at weight 1 + 4 at weight 2 => P = 12
        let e = efficiency(120.0, 10.0, 12.0);
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_matches_paper_convention() {
        // base 100 s, new 54.1 s -> 45.9% improvement (paper's AMR64 max)
        assert!((improvement_percent(100.0, 54.1) - 45.9).abs() < 1e-9);
        // regression shows as negative improvement
        assert!(improvement_percent(100.0, 110.0) < 0.0);
    }

    #[test]
    fn increase_percent_for_efficiency() {
        assert!((increase_percent(0.27, 0.499) - 84.81481481481484).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_mean() {
        assert_eq!(speedup(100.0, 25.0), 4.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
