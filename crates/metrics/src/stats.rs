//! Small summary-statistics helpers for experiment post-processing.
//!
//! Percentile/median logic lives in `telemetry::percentile_exact` (type-7
//! interpolation) so the workspace has exactly one percentile
//! implementation; this module re-exports it.

pub use telemetry::percentile_exact;

/// Summary of a sample: count, mean, standard deviation, min, max, median.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
}

/// Compute a [`Summary`] of `xs` (panics on empty input).
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty(), "summarize of empty sample");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    // type-7 interpolation at q=0.5 reduces to the textbook odd/even median
    let median = percentile_exact(&sorted, 0.5);
    Summary {
        n,
        mean,
        stddev: var.sqrt(),
        min: sorted[0],
        max: sorted[n - 1],
        median,
    }
}

/// Geometric mean (all inputs must be positive) — the right average for
/// ratios such as speedups.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    assert!(xs.iter().all(|&x| x > 0.0), "geometric mean needs positives");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Linear-regression slope of `ys` against `xs` (least squares).
pub fn slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(var > 0.0, "degenerate x values");
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12); // classic textbook sample
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn median_odd_sample() {
        let s = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn single_element() {
        let s = summarize(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // gm <= am
        assert!(geometric_mean(&[1.0, 9.0]) < 5.0);
    }

    #[test]
    fn slope_of_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        assert!((slope(&xs, &ys) - 2.0).abs() < 1e-12);
        // noisy flat data has ~zero slope
        let ys = [5.0, 5.1, 4.9, 5.0];
        assert!(slope(&xs, &ys).abs() < 0.1);
    }
}
