//! Integration test: an N-tenant shared-clock service run is bit-identical
//! across independent executions — including one that records telemetry.
//! Everything the service simulates is seeded, the stepping order is a pure
//! function of view clocks, and the observer must never perturb the run.

use samr_engine::AppKind;
use telemetry::Telemetry;
use tenants::{TenantService, TenantServiceConfig, TenantSpec};
use topology::{presets, DistributedSystem, Link, SystemBuilder, TrafficModel};

/// Five homogeneous 2-proc sites, fully connected by bursty shared links.
fn substrate() -> DistributedSystem {
    let lan = |s: u64| {
        Link::shared(
            "LAN",
            topology::SimTime::from_micros(120),
            125e6,
            TrafficModel::Bursty {
                low: 0.1,
                high: 0.6,
                p_on: 0.4,
                slot: topology::SimTime::from_secs(2).into(),
                seed: s,
            },
        )
    };
    let mut b = SystemBuilder::new();
    for g in 0..5 {
        b = b.group(&format!("site-{g}"), 2, 1.0, presets::origin2000_intra());
    }
    for a in 0..5usize {
        for c in (a + 1)..5 {
            b = b.connect(a, c, lan(((a as u64) << 8) | c as u64));
        }
    }
    b.build()
}

fn mix() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(AppKind::ShockPool3D, 12, 3, 4.0, 2),
        TenantSpec::new(AppKind::AdvectBlob, 8, 3, 1.0, 1),
        TenantSpec::new(AppKind::Amr64, 12, 3, 4.0, 2),
        TenantSpec::new(AppKind::AdvectBlob, 8, 3, 1.0, 1),
        TenantSpec::new(AppKind::AdvectBlob, 10, 3, 2.0, 1),
    ]
}

fn run(telemetry: Telemetry) -> tenants::ServiceResult {
    let cfg = TenantServiceConfig {
        seed: 11,
        telemetry,
        ..TenantServiceConfig::default()
    };
    TenantService::new(substrate(), mix(), cfg).run()
}

#[test]
fn shared_clock_service_is_bit_identical_across_executions() {
    let a = run(Telemetry::null());
    let b = run(Telemetry::null());
    let observed = run(Telemetry::recording());

    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(
        a.fingerprint(),
        observed.fingerprint(),
        "recording telemetry perturbed the shared clock"
    );

    // the fingerprint digests everything below, but compare field-by-field
    // too so a failure names the diverging quantity
    assert_eq!(a.tenants, b.tenants);
    assert_eq!(a.tenants, observed.tenants);
    assert_eq!(a.total_secs.to_bits(), observed.total_secs.to_bits());
    assert_eq!(a.migrations, observed.migrations);
    for (ra, ro) in a.runs.iter().zip(&observed.runs) {
        assert_eq!(ra.total_secs.to_bits(), ro.total_secs.to_bits());
        assert_eq!(ra.cell_updates, ro.cell_updates);
        assert_eq!(ra.steps, ro.steps);
    }
}
