//! Property tests for the admission layer: placement is a pure function of
//! (specs, groups, seed), placements are always well-formed, and the
//! cumulative-distribution pick converges to the priority weights.

use proptest::prelude::*;
use samr_engine::AppKind;
use tenants::rng::SplitMix64;
use tenants::{pick_weighted, place_static, place_tenants, TenantSpec};

fn spec_strategy() -> impl Strategy<Value = TenantSpec> {
    (4usize..20, 1usize..6, 0.5f64..8.0, 1usize..3).prop_map(|(n0, steps, priority, span)| {
        TenantSpec::new(AppKind::AdvectBlob, n0, steps, priority, span)
    })
}

fn batch_strategy() -> impl Strategy<Value = Vec<TenantSpec>> {
    prop::collection::vec(spec_strategy(), 1..9)
}

proptest! {
    /// Same specs + same seed ⇒ bitwise-identical placement; and every
    /// placement is well-formed (a permutation admission order, exactly
    /// `span` distinct in-range groups per tenant).
    #[test]
    fn placement_is_deterministic_and_well_formed(
        specs in batch_strategy(),
        ngroups in 3usize..8,
        seed in any::<u64>(),
    ) {
        let a = place_tenants(&specs, ngroups, seed);
        let b = place_tenants(&specs, ngroups, seed);
        prop_assert_eq!(&a, &b);

        let mut order = a.order.clone();
        order.sort_unstable();
        prop_assert_eq!(order, (0..specs.len()).collect::<Vec<_>>());
        for (t, spec) in specs.iter().enumerate() {
            prop_assert_eq!(a.groups[t].len(), spec.span);
            let mut gs = a.groups[t].clone();
            gs.dedup();
            prop_assert_eq!(gs.len(), spec.span, "duplicate groups for tenant {}", t);
            prop_assert!(a.groups[t].iter().all(|g| g.0 < ngroups));
        }
    }

    /// The static baseline is seed-free and also well-formed.
    #[test]
    fn static_placement_is_well_formed(
        specs in batch_strategy(),
        ngroups in 3usize..8,
    ) {
        let p = place_static(&specs, ngroups);
        prop_assert_eq!(&p.order, &(0..specs.len()).collect::<Vec<_>>());
        for (t, spec) in specs.iter().enumerate() {
            prop_assert_eq!(p.groups[t].len(), spec.span);
            prop_assert!(p.groups[t].iter().all(|g| g.0 < ngroups));
        }
    }

    /// Empirical pick frequencies converge to the normalized priority
    /// weights (the cumulative-distribution pick is unbiased).
    #[test]
    fn pick_frequencies_converge_to_weights(
        weights in prop::collection::vec(0.1f64..10.0, 2..5),
        seed in any::<u64>(),
    ) {
        const DRAWS: usize = 20_000;
        let mut rng = SplitMix64::new(seed);
        let mut hits = vec![0usize; weights.len()];
        for _ in 0..DRAWS {
            hits[pick_weighted(&weights, rng.next_f64())] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = hits[i] as f64 / DRAWS as f64;
            // 20k uniform draws: σ ≤ 0.0036, so ±0.03 is > 8σ
            prop_assert!(
                (observed - expected).abs() < 0.03,
                "weight {} of {:?}: observed {:.4}, expected {:.4}",
                i, weights, observed, expected,
            );
        }
    }
}
