//! Seeded splitmix64 — the admission scheduler's only randomness source.
//!
//! Local on purpose: the service must be bit-identical per seed on every
//! platform, and splitmix64 is small enough to own outright (same reasoning
//! as `topology::traffic`'s generator).

/// Splitmix64 PRNG (Steele/Lea/Flood; public-domain reference constants).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53-bit mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_in_unit_interval() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }
}
