//! What one tenant job looks like to the service.

use samr_engine::AppKind;

/// One SAMR job submitted to the multi-tenant service.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Which application preset the tenant runs.
    pub app: AppKind,
    /// Level-0 domain edge (the job's size knob).
    pub n0: usize,
    /// Refinement levels.
    pub max_levels: usize,
    /// Level-0 steps the tenant wants to run.
    pub steps: usize,
    /// Admission priority weight (> 0): relative odds of being drawn early
    /// from the cumulative priority distribution, hence of getting the
    /// least-loaded groups.
    pub priority: f64,
    /// Groups the tenant's view spans (its private "site count").
    pub span: usize,
}

impl TenantSpec {
    /// A tenant with the workspace's default shape knobs.
    pub fn new(app: AppKind, n0: usize, steps: usize, priority: f64, span: usize) -> Self {
        assert!(priority > 0.0, "priority must be positive");
        assert!(span >= 1, "a tenant spans at least one group");
        TenantSpec {
            app,
            n0,
            max_levels: 3,
            steps,
            priority,
            span,
        }
    }

    /// Rough total workload (level-0 cell-steps): the load weight admission
    /// balances across groups. Deliberately coarse — it only has to rank
    /// jobs, not price them.
    pub fn work_estimate(&self) -> f64 {
        (self.n0 as f64).powi(3) * self.steps as f64
    }

    /// The share of [`TenantSpec::work_estimate`] carried by each group of
    /// the tenant's span.
    pub fn work_per_group(&self) -> f64 {
        self.work_estimate() / self.span as f64
    }
}
