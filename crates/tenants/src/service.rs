//! The multi-tenant scheduler: N re-entrant drivers, one substrate clock.
//!
//! Each tenant is an ordinary [`samr_engine::Driver`] built over a
//! [`SimView`] carved from the service's [`SimHandle`], so intra-tenant
//! balancing (the paper's scheme) runs unchanged while every charge lands
//! on the shared simulator. The service adds the three things a single run
//! never needed:
//!
//! * **interleaved stepping** — always advance the tenant whose view clock
//!   is furthest behind (ties to the lowest tenant id), which is both fair
//!   and a pure function of simulated state, hence deterministic;
//! * **inter-tenant re-balancing** — every `rebalance_interval` completed
//!   steps a tenant may migrate one group of its span off the most
//!   crowded substrate group, gated by the same `Gain > γ·Cost` rule the
//!   intra-tenant DLB uses, with α/β probed on the live (possibly
//!   congested) link and the payload charged leader-to-leader;
//! * **service accounting** — per-tenant step latencies, migrations, and
//!   a tenant telemetry lane (admit/migrate/step events).

use crate::admission::{place_static, place_tenants, Placement};
use crate::spec::TenantSpec;
use dlb::{evaluate_cost, should_redistribute};
use samr_engine::{Driver, RunConfig, RunResult, Scheme};
use simnet::{Activity, SimHandle};
use std::collections::BTreeMap;
use telemetry::{
    EventKind, Telemetry, TenantAdmitEvent, TenantMigrateEvent, TenantStepEvent,
};
use topology::{DistributedSystem, GroupId, LinkEstimator, ProcId};

/// Service-level knobs.
#[derive(Clone, Debug)]
pub struct TenantServiceConfig {
    /// Seed for the admission draw and the per-tenant run seeds.
    pub seed: u64,
    /// γ threshold of the inter-tenant migration gate (paper default 2).
    pub gamma: f64,
    /// A tenant is considered for migration every this many of its own
    /// completed steps (0 disables inter-tenant re-balancing).
    pub rebalance_interval: u64,
    /// Priority/load-aware admission (`true`) or the naive static baseline.
    pub tenant_aware: bool,
    /// Telemetry lane shared by the substrate and the service events.
    pub telemetry: Telemetry,
}

impl Default for TenantServiceConfig {
    fn default() -> Self {
        TenantServiceConfig {
            seed: 42,
            gamma: 2.0,
            rebalance_interval: 2,
            tenant_aware: true,
            telemetry: Telemetry::null(),
        }
    }
}

/// Outcome of one service run.
#[derive(Clone, Debug)]
pub struct ServiceResult {
    /// Per-tenant statistics, indexed like the submitted spec list.
    pub tenants: Vec<metrics::TenantStats>,
    /// The underlying per-tenant run reports.
    pub runs: Vec<RunResult>,
    /// Simulated seconds until the last tenant finished (global clock).
    pub total_secs: f64,
    /// Whole-tenant migrations performed across the run.
    pub migrations: u64,
}

impl ServiceResult {
    /// Aggregate cell-update throughput of the whole service (updates per
    /// simulated second).
    pub fn aggregate_cell_updates_per_sec(&self) -> f64 {
        let cells: u64 = self.tenants.iter().map(|t| t.cell_updates).sum();
        if self.total_secs > 0.0 {
            cells as f64 / self.total_secs
        } else {
            0.0
        }
    }

    /// Worst per-tenant p99 step latency — the service-level SLO number.
    pub fn worst_p99_step_secs(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.p99_step_secs)
            .fold(0.0, f64::max)
    }

    /// FNV-1a digest over every simulated quantity — two runs of the same
    /// seeded service must produce equal fingerprints bit-for-bit.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        fold(self.total_secs.to_bits());
        fold(self.migrations);
        for t in &self.tenants {
            fold(t.steps);
            fold(t.cell_updates);
            fold(t.total_secs.to_bits());
            fold(t.p50_step_secs.to_bits());
            fold(t.p99_step_secs.to_bits());
            fold(t.migrations);
            for g in &t.groups {
                fold(*g as u64);
            }
        }
        h
    }
}

/// The running service: shared substrate plus one driver per tenant.
pub struct TenantService {
    cfg: TenantServiceConfig,
    specs: Vec<TenantSpec>,
    placement: Placement,
    handle: SimHandle,
    gsys: DistributedSystem,
    drivers: Vec<Driver>,
    warmup: Vec<u64>,
    steps_done: Vec<u64>,
    /// Per tenant: shared-clock time at its last step completion — the
    /// anchor the next step's service latency is measured from.
    last_mark: Vec<f64>,
    step_secs: Vec<Vec<f64>>,
    migrations: Vec<u64>,
    estimators: BTreeMap<(usize, usize), LinkEstimator>,
}

impl TenantService {
    /// Admit `specs` onto `sys` and build one driver per tenant. Setup
    /// (admission, initial hierarchies) charges the shared clock but is
    /// wiped by the reset at the start of [`TenantService::run`], exactly
    /// like a single run's setup.
    pub fn new(sys: DistributedSystem, specs: Vec<TenantSpec>, cfg: TenantServiceConfig) -> Self {
        assert!(!specs.is_empty(), "service with no tenants");
        let ngroups = sys.ngroups();
        let placement = if cfg.tenant_aware {
            place_tenants(&specs, ngroups, cfg.seed)
        } else {
            place_static(&specs, ngroups)
        };
        let handle = SimHandle::new(sys);
        handle.with(|s| s.set_telemetry(cfg.telemetry.clone()));
        let gsys = handle.system();
        let n = specs.len();
        let mut drivers: Vec<Option<Driver>> = (0..n).map(|_| None).collect();
        let mut warmup = vec![0u64; n];
        for &t in &placement.order {
            let spec = &specs[t];
            let mut rc = RunConfig::new(
                spec.app,
                spec.n0 as i64,
                spec.steps,
                Scheme::distributed_default(),
            );
            rc.max_levels = spec.max_levels;
            rc.seed = cfg.seed ^ ((t as u64) << 32) ^ t as u64;
            rc.telemetry = cfg.telemetry.clone();
            warmup[t] = rc.pool_warmup_steps as u64;
            drivers[t] = Some(Driver::new_on(handle.view(&placement.groups[t]), rc));
        }
        TenantService {
            step_secs: vec![Vec::new(); n],
            last_mark: vec![0.0; n],
            steps_done: vec![0; n],
            migrations: vec![0; n],
            estimators: BTreeMap::new(),
            drivers: drivers.into_iter().map(|d| d.expect("driver built")).collect(),
            warmup,
            cfg,
            specs,
            placement,
            handle,
            gsys,
        }
    }

    /// The admission placement (for tests and the bench harness).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Run every tenant to completion on the shared clock and report.
    pub fn run(mut self) -> ServiceResult {
        self.handle.reset(); // setup excluded, like a single run
        for &t in &self.placement.order {
            self.cfg.telemetry.event(
                0.0,
                EventKind::TenantAdmit(TenantAdmitEvent {
                    tenant: t,
                    priority: self.specs[t].priority,
                    groups: self.drivers[t].sim().group_mapping().iter().map(|g| g.0).collect(),
                }),
            );
        }
        while let Some(t) = self.furthest_behind() {
            if self.steps_done[t] == self.warmup[t] {
                self.drivers[t].hierarchy().pool().mark_steady();
            }
            self.drivers[t].step_once();
            self.steps_done[t] += 1;
            // service-level step latency: shared-clock time since this
            // tenant's previous step completed. Unlike the driver's own
            // per-step delta (snapshotted inside step_once, after
            // co-tenants already advanced the clock), this span covers the
            // queueing a tenant suffers behind neighbours on its groups —
            // the number placement quality actually moves.
            let now = self.drivers[t].sim().elapsed().as_secs_f64();
            let secs = now - self.last_mark[t];
            self.last_mark[t] = now;
            self.step_secs[t].push(secs);
            if self.cfg.telemetry.is_enabled() {
                // service-latency gauge per tenant, next to the event lane
                self.cfg
                    .telemetry
                    .metric(now, &format!("tenant_step_secs:t{t}"), secs);
            }
            self.cfg.telemetry.event(
                now,
                EventKind::TenantStep(TenantStepEvent {
                    tenant: t,
                    step: self.steps_done[t] - 1,
                    secs,
                }),
            );
            let interval = self.cfg.rebalance_interval;
            if interval > 0
                && self.steps_done[t].is_multiple_of(interval)
                && self.steps_done[t] < self.specs[t].steps as u64
            {
                self.maybe_migrate(t);
            }
        }
        self.finish()
    }

    /// The unfinished tenant whose view clock is furthest behind (ties to
    /// the lowest tenant id) — the next one to step.
    fn furthest_behind(&self) -> Option<usize> {
        (0..self.specs.len())
            .filter(|&t| self.steps_done[t] < self.specs[t].steps as u64)
            .min_by(|&a, &b| {
                self.drivers[a]
                    .sim()
                    .elapsed()
                    .cmp(&self.drivers[b].sim().elapsed())
                    .then(a.cmp(&b))
            })
    }

    /// Remaining level-0 cell-steps each tenant still owes every global
    /// group it occupies — the occupancy map migration decisions read.
    fn occupancy(&self) -> Vec<f64> {
        let mut occ = vec![0.0f64; self.gsys.ngroups()];
        for (u, spec) in self.specs.iter().enumerate() {
            let left = spec.steps as u64 - self.steps_done[u].min(spec.steps as u64);
            if left == 0 {
                continue;
            }
            let share = spec.work_per_group() * left as f64 / spec.steps as f64;
            for g in self.drivers[u].sim().group_mapping() {
                occ[g.0] += share;
            }
        }
        occ
    }

    /// Consider migrating one group of tenant `t`'s span off the most
    /// crowded substrate group, through the γ-gated cost model.
    fn maybe_migrate(&mut self, t: usize) {
        let occ = self.occupancy();
        let mapping = self.drivers[t].sim().group_mapping();
        let spec = &self.specs[t];
        let left = spec.steps as u64 - self.steps_done[t];
        let own_share = spec.work_per_group() * left as f64 / spec.steps as f64;

        // the span slot suffering the most co-tenant load
        let (from_local, &from_global) = mapping
            .iter()
            .enumerate()
            .max_by(|(i, a), (j, b)| {
                occ[a.0].total_cmp(&occ[b.0]).then(j.cmp(i))
            })
            .expect("tenant has groups");
        let co_from = occ[from_global.0] - own_share;

        // cheapest homogeneous destination outside the tenant's span
        let nproc = self.gsys.group(from_global).nprocs();
        let weight = self.gsys.proc(self.gsys.group(from_global).procs[0]).weight;
        let to_global = (0..self.gsys.ngroups())
            .map(GroupId)
            .filter(|g| !mapping.contains(g))
            .filter(|&g| {
                self.gsys.group(g).nprocs() == nproc
                    && self.gsys.proc(self.gsys.group(g).procs[0]).weight == weight
            })
            .min_by(|a, b| occ[a.0].total_cmp(&occ[b.0]).then(a.0.cmp(&b.0)));
        let Some(to_global) = to_global else { return };
        let co_to = occ[to_global.0];
        if co_from <= co_to {
            return;
        }

        // gain: co-tenant load difference priced at this tenant's own
        // per-cell cost over the destination group's compute power
        let power: f64 = self
            .gsys
            .group(to_global)
            .procs
            .iter()
            .map(|&p| self.gsys.proc(p).weight)
            .sum();
        let gain_secs =
            (co_from - co_to) * self.drivers[t].app().cost_per_cell() / power.max(1e-12);

        // payload: the tenant's resident data on the group it would leave
        let view_sys = self.drivers[t].sim().system();
        let payload: u64 = self.drivers[t]
            .hierarchy()
            .iter()
            .filter(|p| view_sys.group_of(ProcId(p.owner)) == GroupId(from_local))
            .map(|p| p.payload_bytes())
            .sum();

        // cost: Eq. 1 with α/β probed on the live link, δ from the
        // tenant's own redistribution history
        let key = (
            from_global.0.min(to_global.0),
            from_global.0.max(to_global.0),
        );
        let est = self
            .estimators
            .entry(key)
            .or_insert_with(LinkEstimator::paper_default);
        let probed = self
            .handle
            .with(|s| s.probe_inter(from_global, to_global, est, None));
        if probed.is_err() {
            return; // link unusable: sit this round out
        }
        let (alpha, beta) = (est.alpha().unwrap_or(0.0), est.beta().unwrap_or(0.0));
        let cost = evaluate_cost(alpha, beta, payload, self.drivers[t].history());
        if !should_redistribute(gain_secs, &cost, self.cfg.gamma) {
            return;
        }

        // ship the payload leader-to-leader on the global substrate, then
        // re-point the tenant's view slot
        let moved = self.handle.with(|s| {
            let src = s.system().procs_in(from_global)[0];
            let dst = s.system().procs_in(to_global)[0];
            s.send(src, dst, payload.max(1), Activity::LoadBalance)
        });
        if moved.is_err() {
            return; // transfer died: tenant stays put
        }
        self.drivers[t].sim_mut().remap_group(GroupId(from_local), to_global);
        self.migrations[t] += 1;
        self.cfg.telemetry.event(
            self.drivers[t].sim().elapsed().as_secs_f64(),
            EventKind::TenantMigrate(TenantMigrateEvent {
                tenant: t,
                from_group: from_global.0,
                to_group: to_global.0,
                bytes: payload,
                cost_secs: cost.total_secs(),
                gain_secs,
            }),
        );
    }

    fn finish(self) -> ServiceResult {
        let TenantService {
            specs,
            drivers,
            step_secs,
            migrations,
            handle,
            ..
        } = self;
        let mut tenants = Vec::with_capacity(specs.len());
        let mut runs = Vec::with_capacity(specs.len());
        for (t, driver) in drivers.into_iter().enumerate() {
            let groups: Vec<usize> =
                driver.sim().group_mapping().iter().map(|g| g.0).collect();
            let run = driver.finish();
            let mut sorted = step_secs[t].clone();
            sorted.sort_by(f64::total_cmp);
            let (p50, p99) = if sorted.is_empty() {
                (0.0, 0.0)
            } else {
                (
                    metrics::percentile_exact(&sorted, 0.5),
                    metrics::percentile_exact(&sorted, 0.99),
                )
            };
            tenants.push(metrics::TenantStats {
                tenant: t,
                priority: specs[t].priority,
                groups,
                steps: run.steps as u64,
                cell_updates: run.cell_updates,
                total_secs: run.total_secs,
                p50_step_secs: p50,
                p99_step_secs: p99,
                migrations: migrations[t],
            });
            runs.push(run);
        }
        ServiceResult {
            tenants,
            runs,
            total_secs: handle.elapsed().as_secs_f64(),
            migrations: migrations.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_engine::AppKind;
    use topology::{presets, Link, SystemBuilder, TrafficModel};

    /// Four homogeneous 2-proc sites, fully connected by shared LAN links.
    fn quad_site(seed: u64) -> DistributedSystem {
        let lan = |s: u64| {
            Link::shared(
                "LAN",
                topology::SimTime::from_micros(120),
                125e6,
                TrafficModel::Bursty {
                    low: 0.1,
                    high: 0.5,
                    p_on: 0.4,
                    slot: topology::SimTime::from_secs(2).into(),
                    seed: s,
                },
            )
        };
        let mut b = SystemBuilder::new();
        for name in ["S0", "S1", "S2", "S3"] {
            b = b.group(name, 2, 1.0, presets::origin2000_intra());
        }
        for a in 0..4usize {
            for c in (a + 1)..4 {
                b = b.connect(a, c, lan(seed ^ ((a as u64) << 8) ^ c as u64));
            }
        }
        b.build()
    }

    fn small_specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(AppKind::AdvectBlob, 12, 3, 4.0, 2),
            TenantSpec::new(AppKind::AdvectBlob, 8, 3, 1.0, 1),
            TenantSpec::new(AppKind::AdvectBlob, 12, 3, 4.0, 2),
        ]
    }

    #[test]
    fn shared_clock_run_completes_every_tenant() {
        let svc = TenantService::new(
            quad_site(3),
            small_specs(),
            TenantServiceConfig::default(),
        );
        let res = svc.run();
        assert_eq!(res.tenants.len(), 3);
        for (t, spec) in small_specs().iter().enumerate() {
            assert_eq!(res.runs[t].steps, spec.steps, "tenant {t}");
            assert!(res.tenants[t].p99_step_secs >= res.tenants[t].p50_step_secs);
            assert!(res.tenants[t].total_secs > 0.0);
        }
        assert!(res.total_secs > 0.0);
        assert!(res.aggregate_cell_updates_per_sec() > 0.0);
    }

    #[test]
    fn service_is_deterministic_per_seed_even_when_recording() {
        let quiet = TenantService::new(
            quad_site(3),
            small_specs(),
            TenantServiceConfig::default(),
        )
        .run();
        let recording = TenantService::new(
            quad_site(3),
            small_specs(),
            TenantServiceConfig {
                telemetry: Telemetry::recording(),
                ..TenantServiceConfig::default()
            },
        )
        .run();
        assert_eq!(quiet.fingerprint(), recording.fingerprint());
        let other_seed = TenantService::new(
            quad_site(3),
            small_specs(),
            TenantServiceConfig {
                seed: 7,
                ..TenantServiceConfig::default()
            },
        )
        .run();
        // different admission seed reshuffles placement and run seeds
        assert_ne!(quiet.fingerprint(), other_seed.fingerprint());
    }

    #[test]
    fn migration_gate_honours_disabled_interval() {
        let res = TenantService::new(
            quad_site(3),
            small_specs(),
            TenantServiceConfig {
                rebalance_interval: 0,
                ..TenantServiceConfig::default()
            },
        )
        .run();
        assert_eq!(res.migrations, 0);
    }

    #[test]
    fn tenant_events_reach_the_telemetry_lane() {
        let (tel, sink) = Telemetry::recording_shared();
        TenantService::new(
            quad_site(3),
            small_specs(),
            TenantServiceConfig {
                telemetry: tel,
                ..TenantServiceConfig::default()
            },
        )
        .run();
        let counts = sink.lock().unwrap().counts();
        assert_eq!(counts.tenant_admits, 3);
        assert_eq!(counts.tenant_steps, 9);
    }
}
