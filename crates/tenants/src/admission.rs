//! Priority-weighted admission: tenant → group placement.
//!
//! The admission order is drawn from the *cumulative priority
//! distribution*: each round, one not-yet-admitted tenant is picked with
//! probability proportional to its priority weight (a uniform draw walks
//! the cumulative array — the replica-pick idiom of succinct's dynamic
//! load balancer). Admitted tenants claim the least-loaded groups, so a
//! high-priority job statistically enters early and lands on empty ones.
//!
//! The naive baseline ([`place_static`]) ignores both priority and load:
//! tenants take consecutive group windows in submission order, which is
//! what a per-job scheduler with no service-level view would do.

use crate::rng::SplitMix64;
use crate::spec::TenantSpec;
use topology::GroupId;

/// Result of admitting a batch of tenants onto `ngroups` substrate groups.
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    /// Admission order (indices into the spec list).
    pub order: Vec<usize>,
    /// Per tenant (indexed like the spec list): the global groups its view
    /// spans.
    pub groups: Vec<Vec<GroupId>>,
}

/// Cumulative-distribution pick: the first index whose cumulative weight
/// exceeds `r · Σweights`, for a uniform draw `r ∈ [0, 1)`. Panics on an
/// empty or non-positive-total weight list.
pub fn pick_weighted(weights: &[f64], r: f64) -> usize {
    assert!(!weights.is_empty(), "pick over no weights");
    let total: f64 = weights.iter().inspect(|w| assert!(**w >= 0.0)).sum();
    assert!(total > 0.0, "pick over all-zero weights");
    let target = r.clamp(0.0, 1.0) * total;
    let mut cum = 0.0;
    for (i, w) in weights.iter().enumerate() {
        cum += w;
        if target < cum {
            return i;
        }
    }
    weights.len() - 1
}

/// Priority-weighted, load-aware placement. Deterministic per `seed`.
pub fn place_tenants(specs: &[TenantSpec], ngroups: usize, seed: u64) -> Placement {
    assert!(specs.iter().all(|s| s.span <= ngroups));
    let mut rng = SplitMix64::new(seed);
    let mut remaining: Vec<usize> = (0..specs.len()).collect();
    let mut order = Vec::with_capacity(specs.len());
    while !remaining.is_empty() {
        let weights: Vec<f64> = remaining.iter().map(|&i| specs[i].priority).collect();
        let k = pick_weighted(&weights, rng.next_f64());
        order.push(remaining.remove(k));
    }
    let mut load = vec![0.0f64; ngroups];
    let mut groups = vec![Vec::new(); specs.len()];
    for &t in &order {
        let spec = &specs[t];
        // the spec's span least-loaded groups, ties broken by group id
        let mut by_load: Vec<usize> = (0..ngroups).collect();
        by_load.sort_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)));
        let mut chosen: Vec<GroupId> = by_load[..spec.span].iter().map(|&g| GroupId(g)).collect();
        chosen.sort_by_key(|g| g.0);
        for g in &chosen {
            load[g.0] += spec.work_per_group();
        }
        groups[t] = chosen;
    }
    Placement { order, groups }
}

/// Naive static placement: tenant `i` takes the `span` consecutive groups
/// starting at `(i · span) mod ngroups`, in submission order — no priority,
/// no load awareness.
pub fn place_static(specs: &[TenantSpec], ngroups: usize) -> Placement {
    assert!(specs.iter().all(|s| s.span <= ngroups));
    let groups = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let anchor = (i * spec.span) % ngroups;
            let mut g: Vec<GroupId> =
                (0..spec.span).map(|k| GroupId((anchor + k) % ngroups)).collect();
            g.sort_by_key(|g| g.0);
            g
        })
        .collect();
    Placement {
        order: (0..specs.len()).collect(),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samr_engine::AppKind;

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(AppKind::AdvectBlob, 16, 4, 4.0, 2),
            TenantSpec::new(AppKind::AdvectBlob, 8, 4, 1.0, 1),
            TenantSpec::new(AppKind::AdvectBlob, 16, 4, 4.0, 2),
            TenantSpec::new(AppKind::AdvectBlob, 8, 4, 1.0, 1),
        ]
    }

    #[test]
    fn pick_walks_the_cumulative_distribution() {
        let w = [1.0, 3.0];
        assert_eq!(pick_weighted(&w, 0.0), 0);
        assert_eq!(pick_weighted(&w, 0.24), 0);
        assert_eq!(pick_weighted(&w, 0.26), 1);
        assert_eq!(pick_weighted(&w, 0.999), 1);
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let s = specs();
        assert_eq!(place_tenants(&s, 4, 11), place_tenants(&s, 4, 11));
        // every tenant got its span, all groups valid and distinct
        let p = place_tenants(&s, 4, 11);
        for (t, spec) in s.iter().enumerate() {
            assert_eq!(p.groups[t].len(), spec.span);
            let mut g = p.groups[t].clone();
            g.dedup();
            assert_eq!(g.len(), spec.span);
        }
    }

    #[test]
    fn aware_placement_spreads_load() {
        // two heavy 2-group tenants must not share a group when 4 are free
        let s = specs();
        let p = place_tenants(&s, 4, 5);
        let heavy0 = &p.groups[0];
        let heavy2 = &p.groups[2];
        assert!(heavy0.iter().all(|g| !heavy2.contains(g)), "{p:?}");
    }

    #[test]
    fn static_placement_is_round_robin_and_blind() {
        let s = specs();
        let p = place_static(&s, 4);
        assert_eq!(p.order, vec![0, 1, 2, 3]);
        assert_eq!(p.groups[0], vec![GroupId(0), GroupId(1)]);
        assert_eq!(p.groups[1], vec![GroupId(1)]);
    }
}
