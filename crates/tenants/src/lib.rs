//! # tenants — multi-tenant balancer service over one shared substrate
//!
//! The paper balances *one* SAMR application across a distributed system; a
//! production service runs many independent jobs competing for the same
//! processors and WAN links the γ-gate prices. This crate is that layer:
//!
//! * **Admission** ([`admission`]) — tenants enter in priority-weighted
//!   order drawn from a cumulative priority distribution (the replica-pick
//!   idiom of succinct's dynamic load balancer) and are placed on the
//!   least-loaded homogeneous group span; a naive static placement is kept
//!   as the comparison baseline.
//! * **Service** ([`service`]) — each admitted tenant gets a re-entrant
//!   [`samr_engine::Driver`] over a [`simnet::SimView`] carved from one
//!   shared [`simnet::SimHandle`], so all tenants advance a single
//!   simulator clock and contend on the same links. The service interleaves
//!   steps (always advancing the tenant whose view clock is furthest
//!   behind) and periodically re-balances whole tenants off overloaded
//!   groups through the same `Gain > γ·Cost` gate the intra-tenant DLB
//!   uses, with α/β probed on the live substrate.
//!
//! Everything is deterministic per seed: the admission RNG is a local
//! splitmix64, stepping order is a pure function of simulated clocks, and
//! recording telemetry never perturbs simulated state.

pub mod admission;
pub mod rng;
pub mod service;
pub mod spec;

pub use admission::{pick_weighted, place_static, place_tenants, Placement};
pub use service::{ServiceResult, TenantService, TenantServiceConfig};
pub use spec::TenantSpec;
