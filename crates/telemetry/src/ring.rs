//! Bounded in-memory event ring: O(1) append, oldest-first eviction with a
//! dropped counter, so a long run can never grow without bound.

use crate::event::EventRecord;
use std::collections::VecDeque;

/// A bounded FIFO of [`EventRecord`]s. When full, pushing evicts the
/// oldest record and counts it as dropped.
#[derive(Clone, Debug)]
pub struct EventRing {
    cap: usize,
    buf: VecDeque<EventRecord>,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` records (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "ring capacity must be positive");
        EventRing {
            cap,
            buf: VecDeque::with_capacity(cap.min(1024)),
            dropped: 0,
        }
    }

    /// Append, evicting the oldest record if full.
    pub fn push(&mut self, rec: EventRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forget everything (capacity and drop counter reset too).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FaultEvent, FaultKind};

    fn rec(seq: u64) -> EventRecord {
        EventRecord {
            seq,
            t_sim_secs: seq as f64,
            kind: EventKind::Fault(FaultEvent {
                step: seq,
                kind: FaultKind::Retry { retries: 1 },
            }),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for s in 0..5 {
            r.push(rec(s));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity(), 3);
    }
}
