//! Exporters: JSONL, Chrome trace-event JSON, and the text summary. All
//! JSON is written by hand (this crate is dependency-free); well-formedness
//! is enforced by round-tripping through [`crate::json`] in tests and in
//! the verify gate.

use crate::event::{EventKind, EventRecord};
use crate::hist::LogHistogram;
use crate::sink::{RecordingSink, SpanRecord};
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a valid JSON number (JSON has no NaN/inf — both map
/// to 0.0, like the bench emitters do).
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0.0".to_string()
    }
}

fn opt_num(x: Option<f64>) -> String {
    match x {
        Some(v) => json_num(v),
        None => "null".to_string(),
    }
}

/// One event as a single-line JSON object (the JSONL row format).
pub fn event_json(rec: &EventRecord) -> String {
    let head = format!(
        "{{\"seq\": {}, \"t_sim\": {}, \"type\": \"{}\"",
        rec.seq,
        json_num(rec.t_sim_secs),
        rec.kind.type_name()
    );
    let body = match &rec.kind {
        EventKind::GammaGate(g) => format!(
            ", \"step\": {}, \"level\": {}, \"proactive\": {}, \"gain_secs\": {}, \
             \"cost_alpha_beta_w_secs\": {}, \"delta_secs\": {}, \"cost_upper_secs\": {}, \
             \"alpha_secs\": {}, \"beta_secs_per_byte\": {}, \"move_bytes\": {}, \
             \"gamma\": {}, \"mae_widening_secs\": {}, \"verdict\": \"{}\", \"reason\": \"{}\"",
            g.step,
            g.level,
            g.proactive,
            json_num(g.gain_secs),
            json_num(g.cost_alpha_beta_w_secs),
            json_num(g.delta_secs),
            json_num(g.cost_upper_secs),
            json_num(g.alpha_secs),
            json_num(g.beta_secs_per_byte),
            g.move_bytes,
            json_num(g.gamma),
            json_num(g.mae_widening_secs),
            g.verdict.as_str(),
            json_escape(g.reason),
        ),
        EventKind::Redistribute(r) => format!(
            ", \"step\": {}, \"level\": {}, \"moved_cells\": {}, \"moves\": {}, \
             \"aborted\": {}, \"delta_secs\": {}",
            r.step,
            r.level,
            r.moved_cells,
            r.moves,
            r.aborted,
            json_num(r.delta_secs),
        ),
        EventKind::Fault(f) => {
            use crate::event::FaultKind::*;
            let (kind, detail) = match f.kind {
                Retry { retries } => ("retry", format!("\"retries\": {retries}")),
                ProbeFailure { group_a, group_b } => (
                    "probe_failure",
                    format!("\"group_a\": {group_a}, \"group_b\": {group_b}"),
                ),
                Quarantine { group } => ("quarantine", format!("\"group\": {group}")),
                Readmit {
                    group,
                    recovery_secs,
                } => (
                    "readmit",
                    format!(
                        "\"group\": {group}, \"recovery_secs\": {}",
                        json_num(recovery_secs)
                    ),
                ),
                Rollback { wasted_secs } => (
                    "rollback",
                    format!("\"wasted_secs\": {}", json_num(wasted_secs)),
                ),
            };
            format!(", \"step\": {}, \"kind\": \"{kind}\", {detail}", f.step)
        }
        EventKind::PredictorSwitch(p) => format!(
            ", \"series\": \"{}\", \"from\": \"{}\", \"to\": \"{}\"",
            json_escape(&p.series),
            json_escape(&p.from),
            json_escape(&p.to),
        ),
        EventKind::Probe(p) => format!(
            ", \"group_a\": {}, \"group_b\": {}, \"alpha_secs\": {}, \
             \"beta_secs_per_byte\": {}, \"predicted_alpha_secs\": {}, \
             \"predicted_beta_secs_per_byte\": {}, \"elapsed_secs\": {}",
            p.group_a,
            p.group_b,
            json_num(p.alpha_secs),
            json_num(p.beta_secs_per_byte),
            opt_num(p.predicted_alpha_secs),
            opt_num(p.predicted_beta_secs_per_byte),
            json_num(p.elapsed_secs),
        ),
        EventKind::Transfer(t) => format!(
            ", \"src\": {}, \"dst\": {}, \"bytes\": {}, \"queue_secs\": {}, \
             \"transfer_secs\": {}, \"remote\": {}, \"failed\": {}",
            t.src,
            t.dst,
            t.bytes,
            json_num(t.queue_secs),
            json_num(t.transfer_secs),
            t.remote,
            t.failed,
        ),
        EventKind::Crash(c) => format!(
            ", \"step\": {}, \"proc\": {}, \"group\": {}",
            c.step, c.proc, c.group,
        ),
        EventKind::Evacuate(e) => format!(
            ", \"step\": {}, \"proc\": {}, \"patches\": {}, \"cells\": {}, \"bytes\": {}, \
             \"intra\": {}, \"inter\": {}, \"recompute_cells\": {}",
            e.step, e.proc, e.patches, e.cells, e.bytes, e.intra, e.inter, e.recompute_cells,
        ),
        EventKind::Rejoin(r) => format!(
            ", \"step\": {}, \"proc\": {}, \"group\": {}, \"downtime_secs\": {}",
            r.step,
            r.proc,
            r.group,
            json_num(r.downtime_secs),
        ),
        EventKind::TenantAdmit(t) => {
            let groups: Vec<String> = t.groups.iter().map(|g| g.to_string()).collect();
            format!(
                ", \"tenant\": {}, \"priority\": {}, \"groups\": [{}]",
                t.tenant,
                json_num(t.priority),
                groups.join(", "),
            )
        }
        EventKind::TenantMigrate(t) => format!(
            ", \"tenant\": {}, \"from_group\": {}, \"to_group\": {}, \"bytes\": {}, \
             \"cost_secs\": {}, \"gain_secs\": {}",
            t.tenant,
            t.from_group,
            t.to_group,
            t.bytes,
            json_num(t.cost_secs),
            json_num(t.gain_secs),
        ),
        EventKind::TenantStep(t) => format!(
            ", \"tenant\": {}, \"step\": {}, \"secs\": {}",
            t.tenant,
            t.step,
            json_num(t.secs),
        ),
        EventKind::Anomaly(a) => format!(
            ", \"kind\": \"{}\", \"value\": {}, \"threshold\": {}, \"streak\": {}, \
             \"detail\": \"{}\"",
            a.kind.as_str(),
            json_num(a.value),
            json_num(a.threshold),
            a.streak,
            json_escape(&a.detail),
        ),
    };
    format!("{head}{body}}}")
}

/// JSONL export: a `"meta"` line first (counters + drop accounting), then
/// `"stat_block"` lines, then one `"phase"` line per (span name, level)
/// histogram (host wall-clock aggregates — individual spans are folded,
/// not retained), then one `"metric"` line per series (retained points
/// inline), then one line per retained event, oldest first.
pub fn to_jsonl(sink: &RecordingSink) -> String {
    let c = sink.counts();
    let (dropped_decisions, dropped_flows) = sink.dropped();
    let mut out = format!(
        "{{\"type\": \"meta\", \"gates\": {}, \"gate_accepts\": {}, \"redistributes\": {}, \
         \"aborted_redistributes\": {}, \"faults\": {}, \"predictor_switches\": {}, \
         \"probes\": {}, \"transfers\": {}, \"failed_transfers\": {}, \
         \"crashes\": {}, \"evacuations\": {}, \"rejoins\": {}, \
         \"tenant_admits\": {}, \"tenant_migrations\": {}, \"tenant_steps\": {}, \
         \"anomalies\": {}, \
         \"dropped_decisions\": {dropped_decisions}, \"dropped_flows\": {dropped_flows}, \
         \"spans_dropped\": {}}}\n",
        c.gates,
        c.gate_accepts,
        c.redistributes,
        c.aborted_redistributes,
        c.faults,
        c.predictor_switches,
        c.probes,
        c.transfers,
        c.failed_transfers,
        c.crashes,
        c.evacuations,
        c.rejoins,
        c.tenant_admits,
        c.tenant_migrations,
        c.tenant_steps,
        c.anomalies,
        sink.spans_dropped(),
    );
    for (name, entries) in sink.stat_blocks() {
        let _ = write!(out, "{{\"type\": \"stat_block\", \"name\": \"{}\"", json_escape(name));
        for (k, v) in entries {
            let _ = write!(out, ", \"{}\": {v}", json_escape(k));
        }
        out.push_str("}\n");
    }
    for ((name, level), h) in sink.phase_histograms() {
        let (p50, p95, p99, max) = h.quartet();
        let level = match level {
            Some(l) => l.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "{{\"type\": \"phase\", \"name\": \"{}\", \"level\": {level}, \"count\": {}, \
             \"total_secs\": {}, \"p50_secs\": {}, \"p95_secs\": {}, \"p99_secs\": {}, \
             \"max_secs\": {}}}",
            json_escape(name),
            h.count(),
            json_num(h.sum()),
            json_num(p50),
            json_num(p95),
            json_num(p99),
            json_num(max),
        );
    }
    for (name, m) in sink.metrics() {
        let _ = write!(
            out,
            "{{\"type\": \"metric\", \"name\": \"{}\", \"samples\": {}, \"kept\": {}, \
             \"downsamples\": {}, \"stride\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
             \"last\": {}, \"points\": [",
            json_escape(name),
            m.observed(),
            m.points().len(),
            m.downsamples(),
            m.stride(),
            json_num(m.min()),
            json_num(m.max()),
            json_num(m.mean()),
            json_num(m.last().1),
        );
        for (i, (t, v)) in m.points().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{}, {}]", json_num(*t), json_num(*v));
        }
        out.push_str("]}\n");
    }
    for ev in sink.events() {
        out.push_str(&event_json(&ev));
        out.push('\n');
    }
    out
}

/// Track (`tid`) assignment for instant events on the sim-time process.
fn sim_tid(kind: &EventKind) -> (u64, &'static str) {
    match kind {
        EventKind::GammaGate(_) => (1, "gamma gate"),
        EventKind::Redistribute(_) => (2, "redistribute"),
        EventKind::Fault(_) => (3, "faults"),
        EventKind::PredictorSwitch(_) => (4, "predictor"),
        EventKind::Probe(_) => (5, "probes"),
        EventKind::Transfer(_) => (6, "transfers"),
        EventKind::Crash(_) | EventKind::Evacuate(_) | EventKind::Rejoin(_) => (7, "recovery"),
        EventKind::TenantAdmit(_) | EventKind::TenantMigrate(_) | EventKind::TenantStep(_) => {
            (8, "tenants")
        }
        EventKind::Anomaly(_) => (9, "anomalies"),
    }
}

/// Span `tid`: per-level rows under the host process (level L on row L+1,
/// un-leveled spans on row 0).
fn span_tid(s: &SpanRecord) -> u64 {
    match s.level {
        Some(l) => l as u64 + 1,
        None => 0,
    }
}

const HOST_PID: u64 = 0;
const SIM_PID: u64 = 1;

/// Chrome trace-event export. Two processes: pid 0 carries host wall-clock
/// spans (`ph: "X"`, one row per hierarchy level), pid 1 carries instant
/// decision events (`ph: "i"`) keyed to *simulated* microseconds plus one
/// counter track (`ph: "C"`) per metric series. Events are sorted so `ts`
/// is monotone within every `(pid, tid)` track.
pub fn to_chrome_trace(sink: &RecordingSink) -> String {
    // (pid, tid, ts_us, line)
    let mut rows: Vec<(u64, u64, f64, String)> = Vec::new();

    let meta = |pid: u64, tid: Option<u64>, what: &str, name: &str| -> (u64, u64, f64, String) {
        let (field, tid_v) = match tid {
            Some(t) => (format!(", \"tid\": {t}"), t),
            None => (String::new(), 0),
        };
        (
            pid,
            tid_v,
            -1.0, // metadata sorts before real events on its track
            format!(
                "{{\"name\": \"{what}\", \"ph\": \"M\", \"pid\": {pid}{field}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                json_escape(name)
            ),
        )
    };
    rows.push(meta(HOST_PID, None, "process_name", "host (wall-clock spans)"));
    rows.push(meta(SIM_PID, None, "process_name", "sim (virtual-time events)"));

    let mut span_tids_seen = std::collections::BTreeSet::new();
    for s in sink.spans() {
        let tid = span_tid(s);
        if span_tids_seen.insert(tid) {
            let label = match s.level {
                Some(l) => format!("level {l}"),
                None => "(no level)".to_string(),
            };
            rows.push(meta(HOST_PID, Some(tid), "thread_name", &label));
        }
        let ts = s.start_host_secs * 1e6;
        let dur = s.dur_secs * 1e6;
        rows.push((
            HOST_PID,
            tid,
            ts,
            format!(
                "{{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": {HOST_PID}, \"tid\": {tid}}}",
                json_escape(s.name),
                json_num(ts),
                json_num(dur),
            ),
        ));
    }

    let mut sim_tids_seen = std::collections::BTreeSet::new();
    for ev in sink.events() {
        let (tid, label) = sim_tid(&ev.kind);
        if sim_tids_seen.insert(tid) {
            rows.push(meta(SIM_PID, Some(tid), "thread_name", label));
        }
        let ts = ev.t_sim_secs * 1e6;
        // the full payload rides in args: strip the JSONL object braces
        let payload = event_json(&ev);
        rows.push((
            SIM_PID,
            tid,
            ts,
            format!(
                "{{\"name\": \"{}\", \"cat\": \"decision\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {}, \"pid\": {SIM_PID}, \"tid\": {tid}, \"args\": {{\"event\": {payload}}}}}",
                ev.kind.type_name(),
                json_num(ts),
            ),
        ));
    }

    // metric series ride as counter tracks on the sim-time process; the
    // retained points are already time-ordered per series, and the sort
    // below merges series sharing the track
    for (name, m) in sink.metrics() {
        for &(t, v) in m.points() {
            let ts = t * 1e6;
            rows.push((
                SIM_PID,
                0,
                ts,
                format!(
                    "{{\"name\": \"{}\", \"cat\": \"metric\", \"ph\": \"C\", \"ts\": {}, \
                     \"pid\": {SIM_PID}, \"tid\": 0, \"args\": {{\"value\": {}}}}}",
                    json_escape(name),
                    json_num(ts),
                    json_num(v),
                ),
            ));
        }
    }

    // monotone ts per (pid, tid) track; stable so equal timestamps keep
    // their recording order
    rows.sort_by(|a, b| {
        (a.0, a.1)
            .cmp(&(b.0, b.1))
            .then(a.2.total_cmp(&b.2))
    });
    let body: Vec<String> = rows.into_iter().map(|(_, _, _, line)| line).collect();
    format!(
        "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n{}\n]}}\n",
        body.join(",\n")
    )
}

fn hist_line(name: &str, h: &LogHistogram) -> String {
    let (p50, p95, p99, max) = h.quartet();
    format!(
        "  {name:<24} n {:>7}  total {:>9.3}s  p50 {:>10.3e}s  p95 {:>10.3e}s  p99 {:>10.3e}s  max {:>10.3e}s\n",
        h.count(),
        h.sum(),
        p50,
        p95,
        p99,
        max
    )
}

/// The human-readable report: top-N slowest phases, gate verdict table per
/// level, per-link α/β drift, transfer distributions, drop accounting.
pub fn summary_text(sink: &RecordingSink) -> String {
    let mut out = String::from("telemetry summary\n");

    // phases ranked by total host time
    let mut phases: Vec<(&(&'static str, Option<usize>), &LogHistogram)> =
        sink.phase_histograms().iter().collect();
    phases.sort_by(|a, b| b.1.sum().total_cmp(&a.1.sum()));
    if !phases.is_empty() {
        out.push_str("phases by total host time (top 8):\n");
        for ((name, level), h) in phases.into_iter().take(8) {
            let label = match level {
                Some(l) => format!("{name}[l{l}]"),
                None => (*name).to_string(),
            };
            out.push_str(&hist_line(&label, h));
        }
    }

    let c = sink.counts();
    if c.gates > 0 {
        out.push_str("gamma gate verdicts per level:\n");
        for (level, t) in sink.gate_by_level() {
            let _ = writeln!(
                out,
                "  level {level}: accept {:>4}  reject {:>4}  deferred {:>4}",
                t.accept, t.reject, t.deferred
            );
        }
        let _ = writeln!(
            out,
            "redistributions: {} invoked ({} aborted), fault transitions: {}, predictor switches: {}",
            c.redistributes, c.aborted_redistributes, c.faults, c.predictor_switches
        );
    }

    if c.crashes + c.evacuations + c.rejoins > 0 {
        let _ = writeln!(
            out,
            "crash-stop recovery: {} crashes, {} evacuations, {} rejoins",
            c.crashes, c.evacuations, c.rejoins
        );
    }

    if c.tenant_admits + c.tenant_migrations + c.tenant_steps > 0 {
        let _ = writeln!(
            out,
            "tenants: {} admitted, {} migrations, {} shared-clock steps",
            c.tenant_admits, c.tenant_migrations, c.tenant_steps
        );
    }

    if c.anomalies > 0 {
        let tally = sink.anomaly_tally();
        let by_kind: Vec<String> = crate::event::AnomalyKind::ALL
            .iter()
            .filter(|k| tally[k.index()] > 0)
            .map(|k| format!("{} {}", k.as_str(), tally[k.index()]))
            .collect();
        let _ = writeln!(out, "anomalies: {} ({})", c.anomalies, by_kind.join(", "));
        for ev in sink.events() {
            if let EventKind::Anomaly(a) = &ev.kind {
                let _ = writeln!(out, "  t={:.3}s {}: {}", ev.t_sim_secs, a.kind.as_str(), a.detail);
            }
        }
    }

    if !sink.metrics().is_empty() {
        out.push_str("metric series (bounded, stride-downsampled):\n");
        for (name, m) in sink.metrics() {
            let _ = writeln!(
                out,
                "  {name:<24} n {:>7} kept {:>4} (stride {})  min {:.3e}  mean {:.3e}  max {:.3e}  last {:.3e}",
                m.observed(),
                m.points().len(),
                m.stride(),
                m.min(),
                m.mean(),
                m.max(),
                m.last().1
            );
        }
    }

    if !sink.drift().is_empty() {
        out.push_str("per-link probe drift (measured vs predicted):\n");
        for ((a, b), d) in sink.drift() {
            let (ae, be) = if d.scored > 0 {
                (
                    d.alpha_abs_err_sum / d.scored as f64,
                    d.beta_abs_err_sum / d.scored as f64,
                )
            } else {
                (0.0, 0.0)
            };
            let _ = writeln!(
                out,
                "  g{a}-g{b}: probes {:>4}  mean|alpha err| {:.3e}s  mean|beta err| {:.3e}s/B  last alpha {:.3e}s beta {:.3e}s/B",
                d.probes, ae, be, d.last_alpha, d.last_beta
            );
        }
    }

    if c.transfers > 0 {
        out.push_str("transfers (simulated):\n");
        out.push_str(&hist_line("queue wait", sink.transfer_queue_hist()));
        out.push_str(&hist_line("latency", sink.transfer_latency_hist()));
        let _ = writeln!(
            out,
            "  {} transfers ({} failed), {} probes",
            c.transfers, c.failed_transfers, c.probes
        );
    }

    if !sink.stat_blocks().is_empty() {
        out.push_str("counter blocks:\n");
        for (name, entries) in sink.stat_blocks() {
            let _ = write!(out, "  {name}:");
            for (k, v) in entries {
                let _ = write!(out, " {k} {v}");
            }
            out.push('\n');
        }
    }

    let (dd, df) = sink.dropped();
    if dd + df + sink.spans_dropped() > 0 {
        let _ = writeln!(
            out,
            "dropped: {dd} decision events, {df} flow events, {} spans (ring bounds)",
            sink.spans_dropped()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::*;
    use crate::json::{self, Json};
    use crate::sink::{Telemetry, TelemetrySink};

    fn populated_sink() -> RecordingSink {
        let mut s = RecordingSink::default();
        s.record_event(
            0.25,
            EventKind::GammaGate(GammaGateEvent {
                step: 0,
                level: 0,
                proactive: false,
                gain_secs: 2.0,
                cost_alpha_beta_w_secs: 0.5,
                delta_secs: 0.25,
                cost_upper_secs: 0.75,
                alpha_secs: 0.02,
                beta_secs_per_byte: 8e-8,
                move_bytes: 1 << 20,
                gamma: 1.0,
                mae_widening_secs: 0.0,
                verdict: GateVerdict::Accept,
                reason: "gate",
            }),
        );
        s.record_event(
            0.26,
            EventKind::Redistribute(RedistributeEvent {
                step: 0,
                level: 0,
                moved_cells: 4096,
                moves: 7,
                aborted: false,
                delta_secs: 0.1,
            }),
        );
        s.record_event(
            0.30,
            EventKind::Fault(FaultEvent {
                step: 0,
                kind: FaultKind::Rollback { wasted_secs: 0.4 },
            }),
        );
        s.record_event(
            0.31,
            EventKind::PredictorSwitch(PredictorSwitchEvent {
                series: "beta:g0-g1".into(),
                from: "last".into(),
                to: "mean(4)".into(),
            }),
        );
        s.record_event(
            0.20,
            EventKind::Probe(ProbeEvent {
                group_a: 0,
                group_b: 1,
                alpha_secs: 0.011,
                beta_secs_per_byte: 9e-8,
                predicted_alpha_secs: Some(0.010),
                predicted_beta_secs_per_byte: Some(1e-7),
                elapsed_secs: 0.03,
            }),
        );
        s.record_event(
            0.40,
            EventKind::Transfer(TransferEvent {
                src: 1,
                dst: 5,
                bytes: 65536,
                queue_secs: 0.002,
                transfer_secs: 0.015,
                remote: true,
                failed: false,
            }),
        );
        s.record_span(SpanRecord {
            name: "solve",
            level: Some(1),
            start_host_secs: 0.001,
            dur_secs: 0.004,
        });
        s.record_span(SpanRecord {
            name: "ghost_exchange",
            level: Some(1),
            start_host_secs: 0.006,
            dur_secs: 0.002,
        });
        s
    }

    #[test]
    fn every_jsonl_line_parses() {
        let s = populated_sink();
        let jsonl = s.to_jsonl().unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        // meta + 2 phase aggregates + 1 derived metric (gate_accept_rate)
        // + 6 events
        assert_eq!(lines.len(), 10);
        let meta = json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("type").and_then(Json::as_str), Some("meta"));
        assert_eq!(meta.get("gates").and_then(Json::as_f64), Some(1.0));
        assert_eq!(meta.get("anomalies").and_then(Json::as_f64), Some(0.0));
        for line in &lines[1..] {
            let v = json::parse(line).unwrap();
            let ty = v.get("type").and_then(Json::as_str).unwrap();
            if ty == "metric" || ty == "stat_block" || ty == "phase" {
                continue; // aggregate lines carry no event envelope
            }
            assert!(v.get("seq").and_then(Json::as_f64).is_some());
            assert!(v.get("t_sim").and_then(Json::as_f64).is_some());
        }
        // the probe line keeps predicted values as numbers, not strings
        let probe = lines[1..]
            .iter()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("type").and_then(Json::as_str) == Some("probe"))
            .unwrap();
        assert_eq!(
            probe.get("predicted_alpha_secs").and_then(Json::as_f64),
            Some(0.010)
        );
        // phase aggregates carry the folded span histograms
        let phase = lines[1..]
            .iter()
            .map(|l| json::parse(l).unwrap())
            .find(|v| {
                v.get("type").and_then(Json::as_str) == Some("phase")
                    && v.get("name").and_then(Json::as_str) == Some("solve")
            })
            .expect("phase line for the solve span");
        assert_eq!(phase.get("level").and_then(Json::as_f64), Some(1.0));
        assert_eq!(phase.get("count").and_then(Json::as_f64), Some(1.0));
        assert_eq!(phase.get("total_secs").and_then(Json::as_f64), Some(0.004));
    }

    #[test]
    fn stat_block_jsonl_lines_parse_and_follow_meta() {
        let mut s = populated_sink();
        s.record_stat_block("field_pool", &[("hits", 42), ("steady_misses", 0)]);
        let jsonl = s.to_jsonl().unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        // meta + stat block + 2 phase aggregates + 1 derived metric + 6 events
        assert_eq!(lines.len(), 11);
        let block = json::parse(lines[1]).unwrap();
        assert_eq!(block.get("type").and_then(Json::as_str), Some("stat_block"));
        assert_eq!(block.get("name").and_then(Json::as_str), Some("field_pool"));
        assert_eq!(block.get("hits").and_then(Json::as_f64), Some(42.0));
        assert_eq!(block.get("steady_misses").and_then(Json::as_f64), Some(0.0));
        let text = s.summary().unwrap();
        assert!(text.contains("counter blocks"), "{text}");
        assert!(text.contains("field_pool"), "{text}");
    }

    #[test]
    fn chrome_trace_is_well_formed_and_monotone_per_track() {
        let s = populated_sink();
        let doc = json::parse(&s.to_chrome_trace().unwrap()).expect("trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
        let mut saw_span = false;
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
            let pid = ev.get("pid").and_then(Json::as_f64).expect("pid") as u64;
            match ph {
                "M" => continue,
                "X" => {
                    saw_span = true;
                    assert!(ev.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
                }
                "i" => {
                    assert!(ev.get("args").is_some());
                }
                "C" => {
                    let args = ev.get("args").expect("counter args");
                    assert!(args.get("value").and_then(Json::as_f64).is_some());
                }
                other => panic!("unexpected ph {other}"),
            }
            let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as u64;
            let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
            if let Some(prev) = last_ts.insert((pid, tid), ts) {
                assert!(ts >= prev, "ts not monotone on track ({pid},{tid})");
            }
        }
        assert!(saw_span);
    }

    #[test]
    fn summary_mentions_the_load_bearing_sections() {
        let s = populated_sink();
        let text = s.summary().unwrap();
        assert!(text.contains("phases by total host time"));
        assert!(text.contains("gamma gate verdicts per level"));
        assert!(text.contains("per-link probe drift"));
        assert!(text.contains("queue wait"));
        assert!(text.contains("g0-g1"));
    }

    #[test]
    fn recovery_events_export_count_and_summarize() {
        let mut s = RecordingSink::default();
        s.record_event(
            0.1,
            EventKind::Crash(CrashEvent {
                step: 3,
                proc: 2,
                group: 1,
            }),
        );
        s.record_event(
            0.2,
            EventKind::Evacuate(EvacuateEvent {
                step: 3,
                proc: 2,
                patches: 4,
                cells: 4096,
                bytes: 1 << 16,
                intra: 3,
                inter: 1,
                recompute_cells: 4096,
            }),
        );
        s.record_event(
            0.9,
            EventKind::Rejoin(RejoinEvent {
                step: 9,
                proc: 2,
                group: 1,
                downtime_secs: 0.8,
            }),
        );
        let c = s.counts();
        assert_eq!((c.crashes, c.evacuations, c.rejoins), (1, 1, 1));
        // all three are decision events: the flow ring must stay empty
        assert!(s.events().iter().all(|e| e.kind.is_decision()));

        let jsonl = s.to_jsonl().unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4); // meta + 3 events
        let meta = json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("crashes").and_then(Json::as_f64), Some(1.0));
        assert_eq!(meta.get("rejoins").and_then(Json::as_f64), Some(1.0));
        let evac = lines[1..]
            .iter()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("type").and_then(Json::as_str) == Some("evacuate"))
            .unwrap();
        assert_eq!(evac.get("cells").and_then(Json::as_f64), Some(4096.0));
        assert_eq!(evac.get("intra").and_then(Json::as_f64), Some(3.0));

        assert!(json::parse(&s.to_chrome_trace().unwrap()).is_ok());
        let text = s.summary().unwrap();
        assert!(text.contains("crash-stop recovery"), "{text}");
    }

    #[test]
    fn metric_lines_round_trip_points_and_counters_reach_the_trace() {
        let mut s = RecordingSink::default();
        for i in 0..5 {
            s.record_metric(i as f64 * 0.5, "imbalance", 1.0 + i as f64 * 0.01);
        }
        let jsonl = s.to_jsonl().unwrap();
        let metric = jsonl
            .lines()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("type").and_then(Json::as_str) == Some("metric"))
            .expect("metric line");
        assert_eq!(metric.get("name").and_then(Json::as_str), Some("imbalance"));
        assert_eq!(metric.get("samples").and_then(Json::as_f64), Some(5.0));
        assert_eq!(metric.get("kept").and_then(Json::as_f64), Some(5.0));
        let points = metric.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 5);
        let p3 = points[3].as_arr().unwrap();
        assert_eq!(p3[0].as_f64(), Some(1.5));
        assert_eq!(p3[1].as_f64(), Some(1.03));
        // the same series shows up as ph "C" counter rows in the trace
        let trace = json::parse(&s.to_chrome_trace().unwrap()).unwrap();
        let counters: Vec<&Json> = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 5);
        assert_eq!(counters[0].get("name").and_then(Json::as_str), Some("imbalance"));
        let text = s.summary().unwrap();
        assert!(text.contains("metric series"), "{text}");
        assert!(text.contains("imbalance"), "{text}");
    }

    #[test]
    fn anomaly_events_export_on_their_own_lane_and_summarize() {
        use crate::metrics::{IMBALANCE_STUCK_STREAK, IMBALANCE_STUCK_THRESHOLD};
        let mut s = RecordingSink::default();
        for i in 0..IMBALANCE_STUCK_STREAK {
            s.record_metric(i as f64, "imbalance", IMBALANCE_STUCK_THRESHOLD * 2.0);
        }
        assert_eq!(s.counts().anomalies, 1);
        let jsonl = s.to_jsonl().unwrap();
        let meta = json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(meta.get("anomalies").and_then(Json::as_f64), Some(1.0));
        let anom = jsonl
            .lines()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("type").and_then(Json::as_str) == Some("anomaly"))
            .expect("anomaly line");
        assert_eq!(
            anom.get("kind").and_then(Json::as_str),
            Some("imbalance_stuck")
        );
        assert!(anom.get("detail").and_then(Json::as_str).is_some());
        assert_eq!(
            anom.get("streak").and_then(Json::as_f64),
            Some(IMBALANCE_STUCK_STREAK as f64)
        );
        // the trace puts anomalies on sim lane 9
        let trace = json::parse(&s.to_chrome_trace().unwrap()).unwrap();
        let lane9 = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .any(|e| {
                e.get("ph").and_then(Json::as_str) == Some("i")
                    && e.get("tid").and_then(Json::as_f64) == Some(9.0)
            });
        assert!(lane9, "anomaly instant missing from lane 9");
        let text = s.summary().unwrap();
        assert!(text.contains("anomalies: 1"), "{text}");
        assert!(text.contains("imbalance_stuck"), "{text}");
    }

    #[test]
    fn exports_go_through_the_handle_too() {
        let (tel, _sink) = Telemetry::recording_shared();
        tel.event(
            0.1,
            EventKind::Fault(FaultEvent {
                step: 1,
                kind: FaultKind::Retry { retries: 2 },
            }),
        );
        assert!(json::parse(&tel.to_chrome_trace().unwrap()).is_ok());
        let jsonl = tel.to_jsonl().unwrap();
        assert!(jsonl.lines().count() == 2);
        assert!(tel.summary().is_some());
    }
}
