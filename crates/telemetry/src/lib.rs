//! # telemetry — structured observability for the DLB pipeline
//!
//! Dependency-free (std only, like `metrics`) and deterministic: recording
//! telemetry never touches simulated state, so a run with a
//! [`RecordingSink`] is bit-identical to one with the default [`NullSink`]
//! (the determinism tests enforce this).
//!
//! Three layers:
//!
//! * **Spans** — RAII guards created with [`span!`] measuring host
//!   wall-clock time per phase/level, folded into fixed-bucket log-scale
//!   [`LogHistogram`]s (p50/p95/p99/max).
//! * **Decision events** — typed records ([`GammaGateEvent`],
//!   [`RedistributeEvent`], [`FaultEvent`], [`PredictorSwitchEvent`],
//!   [`ProbeEvent`], [`TransferEvent`]) keyed to *simulated* time, appended
//!   to bounded in-memory rings.
//! * **Metrics** — bounded gauge time-series on simulated time with
//!   deterministic stride-doubling downsampling ([`MetricSeries`]), plus
//!   online anomaly detectors ([`metrics::AnomalyMonitor`]) that emit
//!   typed [`AnomalyEvent`]s into the decision lane.
//! * **Export** — JSONL (one event per line) and Chrome trace-event JSON
//!   (loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)),
//!   plus a human-readable [`Telemetry::summary`] text report.
//!
//! The [`Telemetry`] handle is cheap to clone and a no-op when disabled:
//! [`Telemetry::null`] performs no allocation, no locking, and no clock
//! reads. Sinks are pluggable through the [`TelemetrySink`] trait.

pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod sink;

mod export;

pub use event::{
    AnomalyEvent, AnomalyKind, CrashEvent, EvacuateEvent, EventKind, EventRecord, FaultEvent,
    FaultKind, GammaGateEvent, GateVerdict, PredictorSwitchEvent, ProbeEvent, RedistributeEvent,
    RejoinEvent, TenantAdmitEvent, TenantMigrateEvent, TenantStepEvent, TransferEvent,
};
pub use hist::{percentile_exact, LogHistogram};
pub use metrics::{AnomalyMonitor, MetricSeries};
pub use sink::{NullSink, RecordingSink, SpanGuard, SpanRecord, Telemetry, TelemetrySink};

/// Open a host-wall-clock span: `span!(tel, "ghost_exchange", level)` (or
/// without a level: `span!(tel, "setup")`). The returned RAII guard records
/// its elapsed time into the sink's per-(phase, level) histogram when
/// dropped; against a [`NullSink`]/disabled handle it is fully inert (no
/// clock read).
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        $tel.span($name, None)
    };
    ($tel:expr, $name:expr, $level:expr) => {
        $tel.span($name, Some($level))
    };
}
