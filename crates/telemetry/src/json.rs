//! A minimal recursive-descent JSON parser (std only). Exists so the
//! well-formedness of this crate's own exports can be verified — in tests,
//! in the verify gate, and in the bench bins — without a serializer
//! dependency. Not a general-purpose library: no serde integration, object
//! keys keep insertion order, numbers are `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable reason.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// content is an error).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: expect the low half next
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
        let doc = parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(parse(r#""\ud83d""#).is_err());
    }
}
