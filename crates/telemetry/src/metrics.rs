//! Continuous metrics: bounded time-series sampled on *simulated* time,
//! and the online anomaly detectors that watch them.
//!
//! A [`MetricSeries`] holds `(t_sim, value)` gauge samples in a
//! fixed-capacity buffer. When the buffer fills it halves itself by
//! dropping every other retained point and doubles its keep-stride, so a
//! run of any length costs O(capacity) memory while the retained points
//! stay evenly spaced over the whole run. Retention is a pure function of
//! the sample sequence — two identical runs retain identical points — and
//! running aggregates (count/min/max/mean/last) always cover *every*
//! sample, retained or not.
//!
//! The [`AnomalyMonitor`] sits inside the recording sink and watches the
//! event stream plus a few well-known series names, emitting
//! [`crate::event::AnomalyEvent`]s into the decision ring:
//!
//! * **imbalance stuck** — the `"imbalance"` gauge stayed above threshold
//!   for a streak of samples with no redistribution attempted in between;
//! * **gate starvation** — a streak of priced γ-gate evaluations all
//!   rejected (imbalance is being detected but never acted on);
//! * **probe drift** — the rolling probe prediction error grew a large
//!   factor past the baseline established by the first scored probes;
//! * **pool miss storm** — the `"pool_steady_misses"` counter rose after
//!   the warm-up window, i.e. the steady state started allocating.
//!
//! Detection is pure observation: the monitor only reads what the sink
//! already records, so recording with detectors enabled stays bit-identical
//! to the null handle.

use crate::event::{AnomalyEvent, AnomalyKind, EventKind, GateVerdict};

/// Default retained points per series (halved in place on overflow).
pub const DEFAULT_METRIC_CAP: usize = 512;

/// `"imbalance"` gauge level above which the stuck detector counts.
pub const IMBALANCE_STUCK_THRESHOLD: f64 = 1.5;
/// Consecutive over-threshold imbalance samples (with no redistribute
/// between) that fire [`AnomalyKind::ImbalanceStuck`].
pub const IMBALANCE_STUCK_STREAK: u64 = 8;
/// Consecutive priced-but-rejected γ-gates that fire
/// [`AnomalyKind::GateStarvation`].
pub const GATE_STARVATION_STREAK: u64 = 6;
/// Scored probes used to establish the drift baseline error.
pub const PROBE_DRIFT_BASELINE: u64 = 8;
/// Rolling-window mean error past `factor × baseline` that fires
/// [`AnomalyKind::ProbeDrift`] (once per run).
pub const PROBE_DRIFT_FACTOR: f64 = 4.0;
/// Relative-error floor under which drift is never flagged (quiet links
/// have near-zero baselines; noise on top of nothing is not drift).
pub const PROBE_DRIFT_FLOOR: f64 = 1e-3;
/// Steady-state pool misses in one sampling interval that count as a
/// storm on their own.
pub const POOL_STORM_BURST: f64 = 4.0;
/// Consecutive sampling intervals with fresh steady misses that fire
/// [`AnomalyKind::PoolMissStorm`].
pub const POOL_STORM_STREAK: u64 = 3;

/// A bounded gauge series on simulated time with deterministic
/// stride-doubling downsampling.
#[derive(Clone, Debug)]
pub struct MetricSeries {
    cap: usize,
    stride: u64,
    observed: u64,
    downsamples: u32,
    points: Vec<(f64, f64)>,
    min: f64,
    max: f64,
    sum: f64,
    last: (f64, f64),
}

impl MetricSeries {
    /// A series retaining at most `cap` points (rounded down to an even
    /// count, minimum 2, so halving always lands exactly on cap/2).
    pub fn new(cap: usize) -> Self {
        let cap = (cap.max(2)) & !1;
        MetricSeries {
            cap,
            stride: 1,
            observed: 0,
            downsamples: 0,
            points: Vec::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            last: (0.0, 0.0),
        }
    }

    /// Record one sample. Aggregates always update; the point itself is
    /// retained only when the sample index lands on the current stride.
    pub fn push(&mut self, t_sim_secs: f64, value: f64) {
        let idx = self.observed;
        self.observed += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = (t_sim_secs, value);
        if !idx.is_multiple_of(self.stride) {
            return;
        }
        if self.points.len() == self.cap {
            // drop every other point; the survivors are spaced 2×stride
            let mut i = 0;
            self.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
            self.downsamples += 1;
            // idx is cap×old_stride here, always divisible by the doubled
            // stride (cap is even), so the triggering sample is retained
            if !idx.is_multiple_of(self.stride) {
                return;
            }
        }
        self.points.push((t_sim_secs, value));
    }

    /// Retained `(t_sim, value)` points, oldest first.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Total samples observed (retained or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Times the buffer halved itself (retained spacing is `2^downsamples`
    /// samples).
    pub fn downsamples(&self) -> u32 {
        self.downsamples
    }

    /// Current keep-stride in samples.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Maximum retained points.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Smallest sample seen (0 when empty).
    pub fn min(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean over every sample seen (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.sum / self.observed as f64
        }
    }

    /// Latest `(t_sim, value)` sample.
    pub fn last(&self) -> (f64, f64) {
        self.last
    }
}

/// Per-kind fired-anomaly counters, indexed by [`AnomalyKind::index`]
/// (eviction-proof, like [`crate::sink::EventCounts`]).
pub type AnomalyTally = [u64; AnomalyKind::ALL.len()];

/// The online detectors. Fed by the recording sink from its own event and
/// metric streams; returns the anomalies to emit rather than emitting them
/// itself, so the sink keeps control of sequence numbers.
#[derive(Clone, Debug, Default)]
pub struct AnomalyMonitor {
    imbalance_streak: u64,
    imbalance_peak: f64,
    gate_streak: u64,
    probe_baseline_n: u64,
    probe_baseline_sum: f64,
    probe_recent: [f64; PROBE_DRIFT_BASELINE as usize],
    probe_recent_n: u64,
    probe_fired: bool,
    pool_last: Option<f64>,
    pool_streak: u64,
    fired: AnomalyTally,
}

impl AnomalyMonitor {
    /// Fresh monitor with all detectors at rest.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many anomalies each detector has fired, by [`AnomalyKind::index`].
    pub fn fired(&self) -> AnomalyTally {
        self.fired
    }

    fn fire(&mut self, a: AnomalyEvent, out: &mut Vec<AnomalyEvent>) {
        self.fired[a.kind.index()] += 1;
        out.push(a);
    }

    /// Observe one recorded event. Never called with
    /// [`EventKind::Anomaly`] (the sink filters those out, so detectors
    /// cannot feed back on their own output).
    pub fn on_event(&mut self, kind: &EventKind, out: &mut Vec<AnomalyEvent>) {
        match kind {
            EventKind::GammaGate(g) => {
                if g.verdict == GateVerdict::Accept {
                    self.gate_streak = 0;
                } else if g.reason == "gate" {
                    // priced and compared, yet declined: imbalance existed
                    self.gate_streak += 1;
                    if self.gate_streak == GATE_STARVATION_STREAK {
                        let streak = self.gate_streak;
                        self.gate_streak = 0;
                        self.fire(
                            AnomalyEvent {
                                kind: AnomalyKind::GateStarvation,
                                value: streak as f64,
                                threshold: GATE_STARVATION_STREAK as f64,
                                streak,
                                detail: format!(
                                    "{streak} consecutive priced gates rejected (last at step {}, gain {:.3e}s vs cost {:.3e}s)",
                                    g.step, g.gain_secs, g.cost_upper_secs
                                ),
                            },
                            out,
                        );
                    }
                }
            }
            EventKind::Redistribute(_) => {
                // a redistribution was attempted: the stuck detector rests
                self.imbalance_streak = 0;
                self.imbalance_peak = 0.0;
            }
            EventKind::Probe(p) => {
                if let (Some(pa), Some(pb)) =
                    (p.predicted_alpha_secs, p.predicted_beta_secs_per_byte)
                {
                    let rel = |m: f64, pred: f64| (m - pred).abs() / m.abs().max(1e-30);
                    let err = 0.5
                        * (rel(p.alpha_secs, pa) + rel(p.beta_secs_per_byte, pb));
                    self.on_probe_error(err, out);
                }
            }
            _ => {}
        }
    }

    fn on_probe_error(&mut self, err: f64, out: &mut Vec<AnomalyEvent>) {
        if self.probe_baseline_n < PROBE_DRIFT_BASELINE {
            self.probe_baseline_n += 1;
            self.probe_baseline_sum += err;
            return;
        }
        let w = self.probe_recent.len() as u64;
        self.probe_recent[(self.probe_recent_n % w) as usize] = err;
        self.probe_recent_n += 1;
        if self.probe_fired || self.probe_recent_n < w {
            return;
        }
        let baseline =
            (self.probe_baseline_sum / self.probe_baseline_n as f64).max(PROBE_DRIFT_FLOOR);
        let recent = self.probe_recent.iter().sum::<f64>() / w as f64;
        if recent > PROBE_DRIFT_FACTOR * baseline {
            self.probe_fired = true;
            self.fire(
                AnomalyEvent {
                    kind: AnomalyKind::ProbeDrift,
                    value: recent,
                    threshold: PROBE_DRIFT_FACTOR * baseline,
                    streak: w,
                    detail: format!(
                        "rolling probe error {recent:.3e} exceeds {PROBE_DRIFT_FACTOR}x baseline {baseline:.3e} over the last {w} scored probes"
                    ),
                },
                out,
            );
        }
    }

    /// Observe one metric sample. Only the well-known series names drive
    /// detectors; everything else passes through untouched.
    pub fn on_metric(&mut self, name: &str, value: f64, out: &mut Vec<AnomalyEvent>) {
        match name {
            "imbalance" => {
                if value > IMBALANCE_STUCK_THRESHOLD {
                    self.imbalance_streak += 1;
                    self.imbalance_peak = self.imbalance_peak.max(value);
                    if self.imbalance_streak == IMBALANCE_STUCK_STREAK {
                        let (streak, peak) = (self.imbalance_streak, self.imbalance_peak);
                        self.imbalance_streak = 0;
                        self.imbalance_peak = 0.0;
                        self.fire(
                            AnomalyEvent {
                                kind: AnomalyKind::ImbalanceStuck,
                                value: peak,
                                threshold: IMBALANCE_STUCK_THRESHOLD,
                                streak,
                                detail: format!(
                                    "imbalance above {IMBALANCE_STUCK_THRESHOLD} for {streak} samples (peak {peak:.3}) with no redistribution attempted"
                                ),
                            },
                            out,
                        );
                    }
                } else {
                    self.imbalance_streak = 0;
                    self.imbalance_peak = 0.0;
                }
            }
            "pool_steady_misses" => {
                let delta = match self.pool_last {
                    Some(prev) => value - prev,
                    None => 0.0,
                };
                self.pool_last = Some(value);
                if delta >= POOL_STORM_BURST {
                    self.pool_streak = 0;
                    self.fire(
                        AnomalyEvent {
                            kind: AnomalyKind::PoolMissStorm,
                            value: delta,
                            threshold: POOL_STORM_BURST,
                            streak: 1,
                            detail: format!(
                                "{delta:.0} steady-state pool misses in one interval (total {value:.0})"
                            ),
                        },
                        out,
                    );
                } else if delta > 0.0 {
                    self.pool_streak += 1;
                    if self.pool_streak == POOL_STORM_STREAK {
                        let streak = self.pool_streak;
                        self.pool_streak = 0;
                        self.fire(
                            AnomalyEvent {
                                kind: AnomalyKind::PoolMissStorm,
                                value,
                                threshold: 0.0,
                                streak,
                                detail: format!(
                                    "steady-state pool misses grew for {streak} consecutive intervals (total {value:.0})"
                                ),
                            },
                            out,
                        );
                    }
                } else {
                    self.pool_streak = 0;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProbeEvent;

    #[test]
    fn series_is_exact_below_capacity() {
        let mut s = MetricSeries::new(8);
        for i in 0..8 {
            s.push(i as f64, (i * i) as f64);
        }
        assert_eq!(s.points().len(), 8);
        assert_eq!(s.downsamples(), 0);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.observed(), 8);
        assert_eq!(s.points()[3], (3.0, 9.0));
    }

    #[test]
    fn series_downsamples_and_stays_bounded() {
        let cap = 16;
        let mut s = MetricSeries::new(cap);
        for i in 0..10_000u64 {
            s.push(i as f64, i as f64);
        }
        assert!(s.points().len() <= cap, "len {} > cap {cap}", s.points().len());
        assert!(s.downsamples() > 0);
        assert_eq!(s.observed(), 10_000);
        // retained points sit exactly on the stride grid and stay ordered
        let stride = s.stride() as f64;
        let mut prev = f64::NEG_INFINITY;
        for &(t, v) in s.points() {
            assert_eq!(t, v);
            assert_eq!(v % stride, 0.0, "point {v} off the stride-{stride} grid");
            assert!(t > prev);
            prev = t;
        }
        // the first sample is never evicted
        assert_eq!(s.points()[0], (0.0, 0.0));
        // aggregates cover every sample, not just the retained ones
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 9_999.0);
        assert_eq!(s.last(), (9_999.0, 9_999.0));
        assert!((s.mean() - 4_999.5).abs() < 1e-9);
    }

    #[test]
    fn series_retention_is_deterministic() {
        let run = || {
            let mut s = MetricSeries::new(32);
            for i in 0..5_000u64 {
                s.push(i as f64 * 0.25, (i % 97) as f64);
            }
            s.points().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tiny_and_odd_capacities_are_clamped_even() {
        assert_eq!(MetricSeries::new(0).capacity(), 2);
        assert_eq!(MetricSeries::new(7).capacity(), 6);
        let mut s = MetricSeries::new(2);
        for i in 0..100 {
            s.push(i as f64, 1.0);
        }
        assert!(s.points().len() <= 2);
    }

    fn drain(m: &mut AnomalyMonitor, name: &str, vals: &[f64]) -> Vec<AnomalyEvent> {
        let mut out = Vec::new();
        for &v in vals {
            m.on_metric(name, v, &mut out);
        }
        out
    }

    #[test]
    fn imbalance_stuck_needs_a_full_streak_without_redistribution() {
        let mut m = AnomalyMonitor::new();
        let hot = vec![2.0; IMBALANCE_STUCK_STREAK as usize - 1];
        assert!(drain(&mut m, "imbalance", &hot).is_empty());
        // a redistribution resets the streak
        let mut out = Vec::new();
        m.on_event(
            &EventKind::Redistribute(crate::event::RedistributeEvent {
                step: 1,
                level: 0,
                moved_cells: 10,
                moves: 1,
                aborted: false,
                delta_secs: 0.0,
            }),
            &mut out,
        );
        assert!(drain(&mut m, "imbalance", &hot).is_empty());
        // one more over-threshold sample completes the streak
        let fired = drain(&mut m, "imbalance", &[3.0]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::ImbalanceStuck);
        assert_eq!(fired[0].streak, IMBALANCE_STUCK_STREAK);
        assert_eq!(fired[0].value, 3.0);
        assert_eq!(m.fired()[AnomalyKind::ImbalanceStuck.index()], 1);
    }

    #[test]
    fn gate_starvation_counts_only_priced_rejections() {
        let gate = |verdict, reason| {
            EventKind::GammaGate(crate::event::GammaGateEvent {
                step: 0,
                level: 0,
                proactive: false,
                gain_secs: 0.1,
                cost_alpha_beta_w_secs: 1.0,
                delta_secs: 0.0,
                cost_upper_secs: 1.0,
                alpha_secs: 0.01,
                beta_secs_per_byte: 1e-7,
                move_bytes: 0,
                gamma: 1.0,
                mae_widening_secs: 0.0,
                verdict,
                reason,
            })
        };
        let mut m = AnomalyMonitor::new();
        let mut out = Vec::new();
        // "balanced" rejections never count as starvation
        for _ in 0..3 * GATE_STARVATION_STREAK {
            m.on_event(&gate(GateVerdict::Reject, "balanced"), &mut out);
        }
        assert!(out.is_empty());
        for _ in 0..GATE_STARVATION_STREAK - 1 {
            m.on_event(&gate(GateVerdict::Reject, "gate"), &mut out);
        }
        assert!(out.is_empty());
        // an accept resets; starting over takes a full streak again
        m.on_event(&gate(GateVerdict::Accept, "gate"), &mut out);
        for _ in 0..GATE_STARVATION_STREAK {
            m.on_event(&gate(GateVerdict::Reject, "gate"), &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, AnomalyKind::GateStarvation);
    }

    #[test]
    fn probe_drift_fires_once_after_the_baseline_window() {
        let probe = |err_scale: f64| {
            EventKind::Probe(ProbeEvent {
                group_a: 0,
                group_b: 1,
                alpha_secs: 0.01 * (1.0 + err_scale),
                beta_secs_per_byte: 1e-7 * (1.0 + err_scale),
                predicted_alpha_secs: Some(0.01),
                predicted_beta_secs_per_byte: Some(1e-7),
                elapsed_secs: 0.02,
            })
        };
        let mut m = AnomalyMonitor::new();
        let mut out = Vec::new();
        // baseline: ~2% relative error
        for _ in 0..PROBE_DRIFT_BASELINE {
            m.on_event(&probe(0.02), &mut out);
        }
        assert!(out.is_empty());
        // drifted: ~50% relative error, far past 4x baseline
        for _ in 0..PROBE_DRIFT_BASELINE {
            m.on_event(&probe(0.5), &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, AnomalyKind::ProbeDrift);
        // one-shot: staying drifted does not re-fire
        for _ in 0..4 * PROBE_DRIFT_BASELINE {
            m.on_event(&probe(0.9), &mut out);
        }
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn pool_storm_fires_on_burst_or_sustained_growth() {
        let mut m = AnomalyMonitor::new();
        // flat counter: quiet
        assert!(drain(&mut m, "pool_steady_misses", &[0.0, 0.0, 0.0]).is_empty());
        // one big burst
        let fired = drain(&mut m, "pool_steady_misses", &[POOL_STORM_BURST]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::PoolMissStorm);
        // slow sustained growth: one miss per interval for a streak
        let mut m2 = AnomalyMonitor::new();
        let fired = drain(&mut m2, "pool_steady_misses", &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].streak, POOL_STORM_STREAK);
    }

    #[test]
    fn unknown_metric_names_never_fire() {
        let mut m = AnomalyMonitor::new();
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 100.0).collect();
        assert!(drain(&mut m, "group_load:g0", &vals).is_empty());
        assert_eq!(m.fired().iter().sum::<u64>(), 0);
    }
}
