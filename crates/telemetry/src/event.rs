//! Typed decision events. Every record carries the *simulated* time it was
//! observed at (`t_sim_secs`) and a monotone sequence number assigned by
//! the sink, so causality ("this rollback follows that redistribute") is
//! checkable from the log alone.

/// Outcome of one γ-gate evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateVerdict {
    /// `Gain > γ·Cost_upper` — redistribution invoked.
    Accept,
    /// Evaluated and declined (balanced, or the gate failed).
    Reject,
    /// Could not be evaluated this step (collective or probe failure); the
    /// fault protocol decides who sits out next.
    Deferred,
}

impl GateVerdict {
    /// Stable lowercase name used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            GateVerdict::Accept => "accept",
            GateVerdict::Reject => "reject",
            GateVerdict::Deferred => "deferred",
        }
    }
}

/// One evaluation of the paper's decision rule `Gain > γ·Cost`.
#[derive(Clone, Debug, PartialEq)]
pub struct GammaGateEvent {
    /// Level-0 step index at which the gate ran.
    pub step: u64,
    /// Level whose completed step triggered the check (0 for the regular
    /// after-level-0 gate, >0 for proactive fine-level checks).
    pub level: usize,
    /// Whether the check was triggered proactively by the load forecast.
    pub proactive: bool,
    /// Eq. 4 gain estimate, seconds.
    pub gain_secs: f64,
    /// Eq. 1 communication term `α + β·W`, seconds (point estimate; 0 when
    /// the decision never reached pricing).
    pub cost_alpha_beta_w_secs: f64,
    /// Recorded computational overhead δ of the previous redistribution.
    pub delta_secs: f64,
    /// The pessimistic total the gate actually compares against
    /// (`comm_upper + δ`); equals `cost_alpha_beta_w_secs + delta_secs`
    /// in reactive mode.
    pub cost_upper_secs: f64,
    /// Slowest probed/forecast link latency α (seconds).
    pub alpha_secs: f64,
    /// Slowest probed/forecast link inverse bandwidth β (seconds/byte).
    pub beta_secs_per_byte: f64,
    /// Planned migration volume W (bytes).
    pub move_bytes: u64,
    /// The γ threshold in force.
    pub gamma: f64,
    /// Confidence widening applied to the communication term
    /// (`comm_upper − comm`, from horizon·MAE; 0 in reactive mode).
    pub mae_widening_secs: f64,
    /// The verdict.
    pub verdict: GateVerdict,
    /// Why: `"gate"` (priced and compared), `"balanced"`,
    /// `"probe_failed"`, or `"collective_failed"`.
    pub reason: &'static str,
}

/// A global redistribution that was actually invoked (aborted ones
/// included — the matching rollback is a separate [`FaultEvent`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedistributeEvent {
    /// Level-0 step index.
    pub step: u64,
    /// Level whose step triggered the invoking gate.
    pub level: usize,
    /// Level-0 cells moved (for an abort: moved before the failure).
    pub moved_cells: i64,
    /// Individual grid moves performed.
    pub moves: usize,
    /// Whether the redistribution died mid-flight and was rolled back.
    pub aborted: bool,
    /// The δ overhead charged for this redistribution (wasted work, for an
    /// aborted one).
    pub delta_secs: f64,
}

/// Fault-protocol transition kinds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// A retried operation eventually succeeded after `retries` re-attempts.
    Retry {
        /// Re-attempts consumed.
        retries: u32,
    },
    /// An inter-group probe (with its retries) ultimately failed.
    ProbeFailure {
        /// One endpoint group.
        group_a: usize,
        /// The other endpoint group.
        group_b: usize,
    },
    /// `group` was quarantined out of the global phase.
    Quarantine {
        /// The quarantined group.
        group: usize,
    },
    /// `group` passed probation and rejoined after `recovery_secs`.
    Readmit {
        /// The re-admitted group.
        group: usize,
        /// Simulated seconds it spent quarantined.
        recovery_secs: f64,
    },
    /// An invoked redistribution was rolled back; `wasted_secs` is the δ
    /// overhead charged for the round trip.
    Rollback {
        /// Wasted repartition/rebuild seconds.
        wasted_secs: f64,
    },
}

/// One fault-protocol transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Level-0 step index.
    pub step: u64,
    /// What happened.
    pub kind: FaultKind,
}

/// A crash-stop process failure was detected by the driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashEvent {
    /// Level-0 step index at which the crash was detected.
    pub step: u64,
    /// The crashed processor.
    pub proc: usize,
    /// Its group.
    pub group: usize,
}

/// Patches owned by a crashed processor were reassigned to survivors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvacuateEvent {
    /// Level-0 step index.
    pub step: u64,
    /// The crashed processor whose work was evacuated.
    pub proc: usize,
    /// Patches reassigned (all levels).
    pub patches: usize,
    /// Cells reassigned (all levels).
    pub cells: i64,
    /// Bytes shipped from the checkpoint holder to the new owners.
    pub bytes: u64,
    /// Reassignments that stayed inside the dead proc's group.
    pub intra: usize,
    /// Reassignments that had to leave the group.
    pub inter: usize,
    /// Cells recomputed from checkpointed state, charged as recovery.
    pub recompute_cells: i64,
}

/// A crashed processor came back: it re-enters with zero load and is
/// refilled by the normal DLB phases.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RejoinEvent {
    /// Level-0 step index at which the rejoin was detected.
    pub step: u64,
    /// The recovered processor.
    pub proc: usize,
    /// Its group.
    pub group: usize,
    /// Simulated seconds between crash detection and rejoin detection.
    pub downtime_secs: f64,
}

/// The adaptive selector behind a forecast series changed its best member.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictorSwitchEvent {
    /// Which series switched (e.g. `"beta:g0-g1"`, `"load:g2"`).
    pub series: String,
    /// Model forwarded before the observation.
    pub from: String,
    /// Model forwarded after it.
    pub to: String,
}

/// One two-message link probe: measured α/β next to what the estimator
/// predicted beforehand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeEvent {
    /// One endpoint group.
    pub group_a: usize,
    /// The other endpoint group.
    pub group_b: usize,
    /// Measured latency (seconds).
    pub alpha_secs: f64,
    /// Measured inverse bandwidth (seconds/byte).
    pub beta_secs_per_byte: f64,
    /// Estimator's α prediction before folding the sample (None before the
    /// first probe).
    pub predicted_alpha_secs: Option<f64>,
    /// Estimator's β prediction before folding the sample.
    pub predicted_beta_secs_per_byte: Option<f64>,
    /// Simulated duration of the two-message exchange.
    pub elapsed_secs: f64,
}

/// One point-to-point transfer through the simulated network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferEvent {
    /// Sending processor.
    pub src: usize,
    /// Receiving processor.
    pub dst: usize,
    /// Payload size.
    pub bytes: u64,
    /// Time spent queued behind earlier traffic on the shared link.
    pub queue_secs: f64,
    /// Serialization + latency once the link was free (for a failed
    /// transfer: time until the failure was detected).
    pub transfer_secs: f64,
    /// Whether the path crossed groups.
    pub remote: bool,
    /// Whether the transfer failed (fault window or deadline).
    pub failed: bool,
}

/// A tenant job was admitted onto the shared substrate and placed on its
/// group span by the priority-weighted cumulative-distribution pick.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantAdmitEvent {
    /// Tenant index within the service.
    pub tenant: usize,
    /// The tenant's admission priority weight.
    pub priority: f64,
    /// Global group ids the tenant was placed on.
    pub groups: Vec<usize>,
}

/// A whole tenant migrated to a different group span, priced through the
/// same γ-gated cost model the intra-tenant DLB uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantMigrateEvent {
    /// Tenant index within the service.
    pub tenant: usize,
    /// Group the tenant's leading view slot moved off.
    pub from_group: usize,
    /// Group it moved onto.
    pub to_group: usize,
    /// Payload shipped between the group leaders.
    pub bytes: u64,
    /// Priced migration cost (Eq. 1 comm term + δ), seconds.
    pub cost_secs: f64,
    /// Estimated gain that passed the γ-gate, seconds.
    pub gain_secs: f64,
}

/// One tenant level-0 step completed on the shared clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantStepEvent {
    /// Tenant index within the service.
    pub tenant: usize,
    /// The tenant's level-0 step index.
    pub step: u64,
    /// Simulated step latency, seconds.
    pub secs: f64,
}

/// What an online anomaly detector flagged (see [`crate::metrics`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Imbalance stayed above threshold for a streak of samples with no
    /// redistribution attempted in between.
    ImbalanceStuck,
    /// A streak of priced γ-gate evaluations all rejected.
    GateStarvation,
    /// Rolling probe prediction error drifted far past its baseline.
    ProbeDrift,
    /// Steady-state pool misses after the warm-up window.
    PoolMissStorm,
}

impl AnomalyKind {
    /// Every kind, in [`AnomalyKind::index`] order.
    pub const ALL: [AnomalyKind; 4] = [
        AnomalyKind::ImbalanceStuck,
        AnomalyKind::GateStarvation,
        AnomalyKind::ProbeDrift,
        AnomalyKind::PoolMissStorm,
    ];

    /// Stable lowercase name used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::ImbalanceStuck => "imbalance_stuck",
            AnomalyKind::GateStarvation => "gate_starvation",
            AnomalyKind::ProbeDrift => "probe_drift",
            AnomalyKind::PoolMissStorm => "pool_miss_storm",
        }
    }

    /// Dense index into per-kind tallies (the order of [`AnomalyKind::ALL`]).
    pub fn index(self) -> usize {
        match self {
            AnomalyKind::ImbalanceStuck => 0,
            AnomalyKind::GateStarvation => 1,
            AnomalyKind::ProbeDrift => 2,
            AnomalyKind::PoolMissStorm => 3,
        }
    }
}

/// One fired anomaly: an online detector crossed its trigger condition.
#[derive(Clone, Debug, PartialEq)]
pub struct AnomalyEvent {
    /// Which detector fired.
    pub kind: AnomalyKind,
    /// The offending magnitude (peak imbalance, miss delta, rolling error).
    pub value: f64,
    /// The limit it crossed.
    pub threshold: f64,
    /// Consecutive observations involved in the trigger.
    pub streak: u64,
    /// Human-readable one-liner for reports.
    pub detail: String,
}

/// The closed set of event payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// γ-gate evaluation.
    GammaGate(GammaGateEvent),
    /// Invoked global redistribution.
    Redistribute(RedistributeEvent),
    /// Fault-protocol transition.
    Fault(FaultEvent),
    /// Adaptive-predictor switch.
    PredictorSwitch(PredictorSwitchEvent),
    /// Link probe.
    Probe(ProbeEvent),
    /// Network transfer.
    Transfer(TransferEvent),
    /// Crash-stop process failure detected.
    Crash(CrashEvent),
    /// Crashed processor's patches reassigned to survivors.
    Evacuate(EvacuateEvent),
    /// Crashed processor recovered and re-entered.
    Rejoin(RejoinEvent),
    /// Tenant admitted onto the shared substrate.
    TenantAdmit(TenantAdmitEvent),
    /// Whole tenant migrated between group spans.
    TenantMigrate(TenantMigrateEvent),
    /// Tenant level-0 step completed on the shared clock.
    TenantStep(TenantStepEvent),
    /// An online anomaly detector fired (see [`crate::metrics`]).
    Anomaly(AnomalyEvent),
}

impl EventKind {
    /// Stable snake_case tag used as `"type"` in JSON exports.
    pub fn type_name(&self) -> &'static str {
        match self {
            EventKind::GammaGate(_) => "gamma_gate",
            EventKind::Redistribute(_) => "redistribute",
            EventKind::Fault(_) => "fault",
            EventKind::PredictorSwitch(_) => "predictor_switch",
            EventKind::Probe(_) => "probe",
            EventKind::Transfer(_) => "transfer",
            EventKind::Crash(_) => "crash",
            EventKind::Evacuate(_) => "evacuate",
            EventKind::Rejoin(_) => "rejoin",
            EventKind::TenantAdmit(_) => "tenant_admit",
            EventKind::TenantMigrate(_) => "tenant_migrate",
            EventKind::TenantStep(_) => "tenant_step",
            EventKind::Anomaly(_) => "anomaly",
        }
    }

    /// Decision events (gate/redistribute/fault/predictor) live in a
    /// separate ring from the high-volume flow events (probe/transfer and
    /// per-step tenant latencies), so per-transfer noise can never evict
    /// the audit log.
    pub fn is_decision(&self) -> bool {
        !matches!(
            self,
            EventKind::Probe(_) | EventKind::Transfer(_) | EventKind::TenantStep(_)
        )
    }
}

/// A recorded event: payload plus sink-assigned sequence number and the
/// simulated time of observation.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Monotone per-sink sequence number (total order across both rings).
    pub seq: u64,
    /// Simulated seconds at which the event was observed.
    pub t_sim_secs: f64,
    /// The payload.
    pub kind: EventKind,
}
