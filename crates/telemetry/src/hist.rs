//! Fixed-bucket log-scale histogram for latency-like samples, plus the one
//! exact-percentile implementation shared across the workspace
//! ([`percentile_exact`] — `metrics` routes its summary statistics through
//! it so there is a single percentile convention).

use std::sync::OnceLock;

/// Log-scale resolution: buckets per decade of dynamic range.
pub const BUCKETS_PER_DECADE: usize = 8;
/// Covered decades: `1e-9 s` (1 ns) up to `1e3 s`.
pub const DECADES: usize = 12;
/// Lower edge of the first log-scale bucket (seconds).
pub const LOW_EDGE: f64 = 1e-9;

/// Number of bucket boundaries (`BUCKETS_PER_DECADE · DECADES + 1`).
const NUM_EDGES: usize = BUCKETS_PER_DECADE * DECADES + 1;
/// Total buckets: one underflow, the log-spaced interior, one overflow.
pub const NUM_BUCKETS: usize = NUM_EDGES + 1;

/// The shared, lazily-computed edge table: `edges[i] = LOW_EDGE · 10^(i/BPD)`.
fn edges() -> &'static [f64] {
    static EDGES: OnceLock<Vec<f64>> = OnceLock::new();
    EDGES.get_or_init(|| {
        (0..NUM_EDGES)
            .map(|i| LOW_EDGE * 10f64.powf(i as f64 / BUCKETS_PER_DECADE as f64))
            .collect()
    })
}

/// Fixed-bucket log-scale histogram over non-negative `f64` samples
/// (seconds by convention). Values below [`LOW_EDGE`] land in the underflow
/// bucket, values at or beyond the last edge saturate in the overflow
/// bucket. Percentiles are bucket-resolution (reported at the bucket's
/// upper edge, clamped to the exactly-tracked min/max); `min`/`max`/`mean`
/// are exact.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    n: u64,
    sum: f64,
    min_seen: f64,
    max_seen: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            n: 0,
            sum: 0.0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// Bucket index a value falls into. Edges belong to the bucket *above*
    /// them: `bucket_index(LOW_EDGE) == 1`, anything below is underflow
    /// (bucket 0), anything at/after the last edge saturates in the
    /// overflow bucket (`NUM_BUCKETS - 1`). Negative values clamp to 0.
    pub fn bucket_index(v: f64) -> usize {
        edges().partition_point(|e| *e <= v)
    }

    /// Inclusive lower bound of bucket `i` (0.0 for the underflow bucket).
    pub fn bucket_lower_bound(i: usize) -> f64 {
        assert!(i < NUM_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            0.0
        } else {
            edges()[i - 1]
        }
    }

    /// Exclusive upper bound of bucket `i` (`+inf` for the overflow bucket).
    pub fn bucket_upper_bound(i: usize) -> f64 {
        assert!(i < NUM_BUCKETS, "bucket {i} out of range");
        if i == NUM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            edges()[i]
        }
    }

    /// Fold one sample in. Non-finite samples are ignored; negatives count
    /// as underflow.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let v = v.max(0.0);
        self.counts[Self::bucket_index(v)] += 1;
        self.n += 1;
        self.sum += v;
        self.min_seen = self.min_seen.min(v);
        self.max_seen = self.max_seen.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Exact minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min_seen
        }
    }

    /// Exact maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max_seen
        }
    }

    /// Raw per-bucket counts (`NUM_BUCKETS` entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket-resolution percentile `q ∈ [0, 1]`: the upper edge of the
    /// bucket holding the `⌈q·n⌉`-th sample, clamped to the exact observed
    /// min/max. Returns 0.0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper_bound(i)
                    .min(self.max_seen)
                    .max(self.min_seen);
            }
        }
        self.max_seen
    }

    /// Shorthand for the p50/p95/p99/max quadruple the reports print.
    pub fn quartet(&self) -> (f64, f64, f64, f64) {
        (
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
            self.max(),
        )
    }
}

/// Exact sample percentile with linear interpolation (Hyndman–Fan type 7,
/// the convention of numpy's default): `q = 0.5` reproduces the textbook
/// median for both odd and even sample sizes. Panics on an empty sample;
/// `xs` need not be sorted.
pub fn percentile_exact(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(sorted.len() - 1);
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        // Default must be usable for recording, like new()
        let mut d = LogHistogram::default();
        d.record(1.0);
        assert_eq!(d.count(), 1);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn values_below_the_first_edge_underflow() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(LOW_EDGE / 2.0);
        h.record(-1.0); // clamps to 0.0
        assert_eq!(h.counts()[0], 3);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn a_value_exactly_on_an_edge_belongs_to_the_bucket_above() {
        // the first edge
        assert_eq!(LogHistogram::bucket_index(LOW_EDGE), 1);
        // just below it: underflow
        assert_eq!(LogHistogram::bucket_index(LOW_EDGE * 0.999), 0);
        // an interior edge, taken verbatim from the bound table
        let i = 17;
        let edge = LogHistogram::bucket_lower_bound(i);
        assert_eq!(LogHistogram::bucket_index(edge), i);
        // nudged below the edge: previous bucket
        assert_eq!(LogHistogram::bucket_index(edge * (1.0 - 1e-12)), i - 1);
        // strictly inside: same bucket
        let hi = LogHistogram::bucket_upper_bound(i);
        assert_eq!(LogHistogram::bucket_index(0.5 * (edge + hi)), i);
    }

    #[test]
    fn huge_values_saturate_in_the_overflow_bucket() {
        let mut h = LogHistogram::new();
        // exactly the last edge, read from the bound table (the nominal 1e3
        // is off by a few ulps of powf rounding)
        h.record(LogHistogram::bucket_lower_bound(NUM_BUCKETS - 1));
        h.record(1e9);
        h.record(f64::MAX);
        assert_eq!(h.counts()[NUM_BUCKETS - 1], 3);
        // the reported max stays exact despite saturation
        assert_eq!(h.max(), f64::MAX);
        // percentile clamps to the observed extremes, never +inf
        assert!(h.percentile(0.5).is_finite());
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut h = LogHistogram::new();
        // 99 samples at ~1 ms, one at ~1 s
        for _ in 0..99 {
            h.record(1.1e-3);
        }
        h.record(1.1);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let (q50, _, q99, qmax) = h.quartet();
        assert_eq!(p50, q50);
        assert_eq!(p99, q99);
        assert_eq!(qmax, 1.1);
        // p50 and p99 sit in the millisecond bucket, p100 at the outlier
        assert!(p50 < 2e-3, "p50 = {p50}");
        assert!(p99 < 2e-3, "p99 = {p99}");
        assert_eq!(h.percentile(1.0), 1.1);
        // bucket resolution: the reported value bounds the sample above
        assert!(p50 >= 1.1e-3);
        // mean is exact
        assert!((h.mean() - (99.0 * 1.1e-3 + 1.1) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn exact_percentile_matches_textbook_median() {
        assert_eq!(percentile_exact(&[3.0, 1.0, 2.0], 0.5), 2.0);
        assert_eq!(percentile_exact(&[4.0, 1.0, 2.0, 3.0], 0.5), 2.5);
        assert_eq!(percentile_exact(&[7.0], 0.5), 7.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((percentile_exact(&xs, 0.5) - 4.5).abs() < 1e-12);
        assert_eq!(percentile_exact(&xs, 0.0), 2.0);
        assert_eq!(percentile_exact(&xs, 1.0), 9.0);
    }

    #[test]
    #[should_panic]
    fn exact_percentile_of_empty_panics() {
        let _ = percentile_exact(&[], 0.5);
    }
}
