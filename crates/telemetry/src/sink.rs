//! Sinks and the cloneable [`Telemetry`] handle the pipeline records into.
//!
//! The handle is the zero-overhead switch: [`Telemetry::null`] carries no
//! allocation at all — event construction sites guard on
//! [`Telemetry::is_enabled`], span guards are inert (no clock read), and
//! nothing locks. With a recording sink attached, records pass through a
//! mutex into the sink; recording never touches simulated state, so
//! enabling telemetry cannot change a run's results.

use crate::event::{AnomalyEvent, EventKind, EventRecord, GateVerdict, ProbeEvent};
use crate::export;
use crate::hist::LogHistogram;
use crate::metrics::{AnomalyMonitor, AnomalyTally, MetricSeries, DEFAULT_METRIC_CAP};
use crate::ring::EventRing;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// One closed span: host wall-clock, relative to the sink's epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanRecord {
    /// Phase name (e.g. `"solve"`, `"ghost_exchange"`).
    pub name: &'static str,
    /// Hierarchy level the phase ran on, if any.
    pub level: Option<usize>,
    /// Start offset from the recorder epoch, host seconds.
    pub start_host_secs: f64,
    /// Duration, host seconds.
    pub dur_secs: f64,
}

/// Destination of telemetry records. Implementations must be `Send` (the
/// handle is shared across driver-owned structures that cross thread
/// boundaries at spawn time).
pub trait TelemetrySink: Send {
    /// Record one decision/flow event observed at simulated time
    /// `t_sim_secs`. The sink assigns the sequence number.
    fn record_event(&mut self, t_sim_secs: f64, kind: EventKind);

    /// Record one closed span.
    fn record_span(&mut self, span: SpanRecord);

    /// Forget everything recorded so far (the driver calls this when it
    /// resets simulated clocks, so setup work is excluded).
    fn clear(&mut self);

    /// Record (or replace) a named block of whole-run counters — e.g. the
    /// driver's field-pool statistics. Ignored by non-recording sinks.
    fn record_stat_block(&mut self, _name: &'static str, _entries: &[(&'static str, u64)]) {}

    /// Record one gauge sample at simulated time `t_sim_secs` into the
    /// named bounded series (see [`crate::metrics`]). Ignored by
    /// non-recording sinks.
    fn record_metric(&mut self, _t_sim_secs: f64, _name: &str, _value: f64) {}

    /// Human-readable report; `None` for non-recording sinks.
    fn summary(&self) -> Option<String> {
        None
    }

    /// JSONL export (one event per line, meta line first); `None` for
    /// non-recording sinks.
    fn to_jsonl(&self) -> Option<String> {
        None
    }

    /// Chrome trace-event JSON (`chrome://tracing` / Perfetto); `None` for
    /// non-recording sinks.
    fn to_chrome_trace(&self) -> Option<String> {
        None
    }
}

/// The do-nothing sink. [`Telemetry::null`] is the cheaper way to get this
/// behaviour (no allocation, no locking); `NullSink` exists for call sites
/// that want to pass an explicit sink object.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record_event(&mut self, _t_sim_secs: f64, _kind: EventKind) {}
    fn record_span(&mut self, _span: SpanRecord) {}
    fn clear(&mut self) {}
}

/// Accept/reject/defer tally of γ-gate verdicts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateTally {
    /// Gates that invoked a redistribution.
    pub accept: u64,
    /// Gates evaluated and declined.
    pub reject: u64,
    /// Gates deferred by collective/probe failure.
    pub deferred: u64,
}

impl GateTally {
    /// Total evaluations.
    pub fn total(&self) -> u64 {
        self.accept + self.reject + self.deferred
    }
}

/// Per-link measured-vs-predicted probe drift aggregation.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkDrift {
    /// Probes folded in.
    pub probes: u64,
    /// Probes that had a prior prediction to score against.
    pub scored: u64,
    /// Σ|measured α − predicted α| over scored probes.
    pub alpha_abs_err_sum: f64,
    /// Σ|measured β − predicted β| over scored probes.
    pub beta_abs_err_sum: f64,
    /// Latest measured α.
    pub last_alpha: f64,
    /// Latest measured β.
    pub last_beta: f64,
}

/// Whole-run event counters (kept outside the rings, so eviction never
/// falsifies them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// γ-gate evaluations.
    pub gates: u64,
    /// Gate verdicts == Accept.
    pub gate_accepts: u64,
    /// Redistribute events (aborted included).
    pub redistributes: u64,
    /// Redistribute events flagged aborted.
    pub aborted_redistributes: u64,
    /// Fault-protocol transitions.
    pub faults: u64,
    /// Predictor switches.
    pub predictor_switches: u64,
    /// Link probes.
    pub probes: u64,
    /// Network transfers.
    pub transfers: u64,
    /// Transfers that failed.
    pub failed_transfers: u64,
    /// Crash-stop process failures detected.
    pub crashes: u64,
    /// Evacuations of crashed procs' patches.
    pub evacuations: u64,
    /// Crashed procs that recovered and re-entered.
    pub rejoins: u64,
    /// Tenant admissions onto a shared substrate.
    pub tenant_admits: u64,
    /// Whole-tenant migrations between group spans.
    pub tenant_migrations: u64,
    /// Tenant level-0 steps completed on a shared clock.
    pub tenant_steps: u64,
    /// Anomalies flagged by the online detectors.
    pub anomalies: u64,
}

/// Default capacity of the decision ring (gate/redistribute/fault/switch).
pub const DEFAULT_DECISION_CAP: usize = 16 * 1024;
/// Default capacity of the flow ring (probe/transfer).
pub const DEFAULT_FLOW_CAP: usize = 64 * 1024;
/// Default cap on retained span records.
pub const DEFAULT_SPAN_CAP: usize = 64 * 1024;

/// The recording sink: bounded rings for events, a span log, and running
/// aggregations (per-phase histograms, gate tallies per level, per-link
/// probe drift, transfer queue/latency histograms).
#[derive(Clone, Debug)]
pub struct RecordingSink {
    seq: u64,
    decisions: EventRing,
    flows: EventRing,
    spans: Vec<SpanRecord>,
    span_cap: usize,
    spans_dropped: u64,
    phase_hist: BTreeMap<(&'static str, Option<usize>), LogHistogram>,
    transfer_queue: LogHistogram,
    transfer_latency: LogHistogram,
    gate_by_level: BTreeMap<usize, GateTally>,
    drift: BTreeMap<(usize, usize), LinkDrift>,
    counts: EventCounts,
    stat_blocks: BTreeMap<&'static str, Vec<(&'static str, u64)>>,
    metrics: BTreeMap<String, MetricSeries>,
    metric_cap: usize,
    monitor: AnomalyMonitor,
}

impl Default for RecordingSink {
    fn default() -> Self {
        Self::new(DEFAULT_DECISION_CAP, DEFAULT_FLOW_CAP, DEFAULT_SPAN_CAP)
    }
}

impl RecordingSink {
    /// A sink with explicit ring/span capacities.
    pub fn new(decision_cap: usize, flow_cap: usize, span_cap: usize) -> Self {
        RecordingSink {
            seq: 0,
            decisions: EventRing::new(decision_cap),
            flows: EventRing::new(flow_cap),
            spans: Vec::new(),
            span_cap: span_cap.max(1),
            spans_dropped: 0,
            phase_hist: BTreeMap::new(),
            transfer_queue: LogHistogram::new(),
            transfer_latency: LogHistogram::new(),
            gate_by_level: BTreeMap::new(),
            drift: BTreeMap::new(),
            counts: EventCounts::default(),
            stat_blocks: BTreeMap::new(),
            metrics: BTreeMap::new(),
            metric_cap: DEFAULT_METRIC_CAP,
            monitor: AnomalyMonitor::new(),
        }
    }

    /// Change the retained-point capacity used for *subsequently created*
    /// metric series (existing series keep theirs). Survives [`clear`].
    ///
    /// [`clear`]: TelemetrySink::clear
    pub fn set_metric_capacity(&mut self, cap: usize) {
        self.metric_cap = cap;
    }

    /// All retained events from both rings, merged oldest-first (by
    /// sequence number).
    pub fn events(&self) -> Vec<EventRecord> {
        let mut all: Vec<EventRecord> = self
            .decisions
            .iter()
            .chain(self.flows.iter())
            .cloned()
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Retained span records, in close order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Whole-run counters (eviction-proof).
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// Events evicted from the two rings `(decisions, flows)`.
    pub fn dropped(&self) -> (u64, u64) {
        (self.decisions.dropped(), self.flows.dropped())
    }

    /// Spans discarded over the retention cap.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Gate tallies per triggering level.
    pub fn gate_by_level(&self) -> &BTreeMap<usize, GateTally> {
        &self.gate_by_level
    }

    /// Per-link probe drift aggregations, keyed by `(group_a, group_b)`.
    pub fn drift(&self) -> &BTreeMap<(usize, usize), LinkDrift> {
        &self.drift
    }

    /// Per-(phase, level) host-time histograms.
    pub fn phase_histograms(&self) -> &BTreeMap<(&'static str, Option<usize>), LogHistogram> {
        &self.phase_hist
    }

    /// Named counter blocks, keyed by block name (latest value per block).
    pub fn stat_blocks(&self) -> &BTreeMap<&'static str, Vec<(&'static str, u64)>> {
        &self.stat_blocks
    }

    /// Transfer queueing-delay histogram (simulated seconds).
    pub fn transfer_queue_hist(&self) -> &LogHistogram {
        &self.transfer_queue
    }

    /// Transfer latency histogram (simulated seconds).
    pub fn transfer_latency_hist(&self) -> &LogHistogram {
        &self.transfer_latency
    }

    /// All metric series, keyed by name.
    pub fn metrics(&self) -> &BTreeMap<String, MetricSeries> {
        &self.metrics
    }

    /// One metric series by name, if it was ever sampled.
    pub fn metric(&self, name: &str) -> Option<&MetricSeries> {
        self.metrics.get(name)
    }

    /// Anomalies fired per detector kind, indexed by
    /// [`crate::event::AnomalyKind::index`] (eviction-proof; excludes
    /// [`EventKind::Anomaly`] records injected from outside the sink).
    pub fn anomaly_tally(&self) -> AnomalyTally {
        self.monitor.fired()
    }

    /// Store one sample and run the metric-driven detectors, collecting
    /// anything they fire into `fired`.
    fn sample_metric(
        &mut self,
        t_sim_secs: f64,
        name: &str,
        value: f64,
        fired: &mut Vec<AnomalyEvent>,
    ) {
        match self.metrics.get_mut(name) {
            Some(s) => s.push(t_sim_secs, value),
            None => {
                let mut s = MetricSeries::new(self.metric_cap);
                s.push(t_sim_secs, value);
                self.metrics.insert(name.to_string(), s);
            }
        }
        self.monitor.on_metric(name, value, fired);
    }

    /// Append a fired anomaly to the decision ring under its own sequence
    /// number (the monitor never sees these back, so no feedback loops).
    fn emit_anomaly(&mut self, t_sim_secs: f64, a: AnomalyEvent) {
        self.counts.anomalies += 1;
        let rec = EventRecord {
            seq: self.seq,
            t_sim_secs,
            kind: EventKind::Anomaly(a),
        };
        self.seq += 1;
        self.decisions.push(rec);
    }

    fn absorb(&mut self, t_sim_secs: f64, kind: &EventKind, fired: &mut Vec<AnomalyEvent>) {
        match kind {
            EventKind::GammaGate(g) => {
                self.counts.gates += 1;
                let t = self.gate_by_level.entry(g.level).or_default();
                match g.verdict {
                    GateVerdict::Accept => {
                        self.counts.gate_accepts += 1;
                        t.accept += 1;
                    }
                    GateVerdict::Reject => t.reject += 1,
                    GateVerdict::Deferred => t.deferred += 1,
                }
                // derived series: running accept rate over all gates
                let rate = self.counts.gate_accepts as f64 / self.counts.gates as f64;
                self.sample_metric(t_sim_secs, "gate_accept_rate", rate, fired);
            }
            EventKind::Redistribute(r) => {
                self.counts.redistributes += 1;
                if r.aborted {
                    self.counts.aborted_redistributes += 1;
                }
            }
            EventKind::Fault(_) => self.counts.faults += 1,
            EventKind::PredictorSwitch(_) => self.counts.predictor_switches += 1,
            EventKind::Probe(p) => {
                self.counts.probes += 1;
                self.absorb_probe(p);
            }
            EventKind::Transfer(t) => {
                self.counts.transfers += 1;
                if t.failed {
                    self.counts.failed_transfers += 1;
                }
                self.transfer_queue.record(t.queue_secs);
                self.transfer_latency.record(t.transfer_secs);
            }
            EventKind::Crash(_) => self.counts.crashes += 1,
            EventKind::Evacuate(_) => self.counts.evacuations += 1,
            EventKind::Rejoin(_) => self.counts.rejoins += 1,
            EventKind::TenantAdmit(_) => self.counts.tenant_admits += 1,
            EventKind::TenantMigrate(_) => self.counts.tenant_migrations += 1,
            EventKind::TenantStep(_) => self.counts.tenant_steps += 1,
            EventKind::Anomaly(_) => self.counts.anomalies += 1,
        }
    }

    fn absorb_probe(&mut self, p: &ProbeEvent) {
        let key = (p.group_a.min(p.group_b), p.group_a.max(p.group_b));
        let d = self.drift.entry(key).or_default();
        d.probes += 1;
        d.last_alpha = p.alpha_secs;
        d.last_beta = p.beta_secs_per_byte;
        if let (Some(pa), Some(pb)) = (p.predicted_alpha_secs, p.predicted_beta_secs_per_byte) {
            d.scored += 1;
            d.alpha_abs_err_sum += (p.alpha_secs - pa).abs();
            d.beta_abs_err_sum += (p.beta_secs_per_byte - pb).abs();
        }
    }

    /// A convenience constructor for tests/tools: emit one transfer into a
    /// fresh sink and read it back. (Also documents the intended routing.)
    pub fn routing_of(kind: &EventKind) -> &'static str {
        if kind.is_decision() {
            "decisions"
        } else {
            "flows"
        }
    }
}

impl TelemetrySink for RecordingSink {
    fn record_event(&mut self, t_sim_secs: f64, kind: EventKind) {
        let mut fired = Vec::new();
        self.absorb(t_sim_secs, &kind, &mut fired);
        // detectors never see their own output (absorb only counts it)
        if !matches!(kind, EventKind::Anomaly(_)) {
            self.monitor.on_event(&kind, &mut fired);
        }
        let rec = EventRecord {
            seq: self.seq,
            t_sim_secs,
            kind,
        };
        self.seq += 1;
        if rec.kind.is_decision() {
            self.decisions.push(rec);
        } else {
            self.flows.push(rec);
        }
        for a in fired {
            self.emit_anomaly(t_sim_secs, a);
        }
    }

    fn record_span(&mut self, span: SpanRecord) {
        self.phase_hist
            .entry((span.name, span.level))
            .or_default()
            .record(span.dur_secs);
        if self.spans.len() < self.span_cap {
            self.spans.push(span);
        } else {
            self.spans_dropped += 1;
        }
    }

    fn clear(&mut self) {
        let (dc, fc, sc, mc) = (
            self.decisions.capacity(),
            self.flows.capacity(),
            self.span_cap,
            self.metric_cap,
        );
        *self = RecordingSink::new(dc, fc, sc);
        self.metric_cap = mc;
    }

    fn record_stat_block(&mut self, name: &'static str, entries: &[(&'static str, u64)]) {
        self.stat_blocks.insert(name, entries.to_vec());
    }

    fn record_metric(&mut self, t_sim_secs: f64, name: &str, value: f64) {
        let mut fired = Vec::new();
        self.sample_metric(t_sim_secs, name, value, &mut fired);
        for a in fired {
            self.emit_anomaly(t_sim_secs, a);
        }
    }

    fn summary(&self) -> Option<String> {
        Some(export::summary_text(self))
    }

    fn to_jsonl(&self) -> Option<String> {
        Some(export::to_jsonl(self))
    }

    fn to_chrome_trace(&self) -> Option<String> {
        Some(export::to_chrome_trace(self))
    }
}

/// Shared state behind an enabled handle.
#[derive(Clone)]
struct Shared {
    /// Host-clock epoch all span timestamps are relative to.
    epoch: Instant,
    sink: Arc<Mutex<dyn TelemetrySink>>,
}

/// Cheap-to-clone handle the pipeline records through. Disabled by default
/// ([`Telemetry::null`] / `Default`): every operation is then a no-op with
/// no locking and no clock reads.
#[derive(Clone, Default)]
pub struct Telemetry {
    shared: Option<Shared>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.shared.is_some() {
            "Telemetry(recording)"
        } else {
            "Telemetry(null)"
        })
    }
}

fn lock<'a>(
    sink: &'a Arc<Mutex<dyn TelemetrySink + 'static>>,
) -> MutexGuard<'a, dyn TelemetrySink + 'static> {
    // a panic mid-record leaves only a partially-updated *observation*;
    // keep reporting rather than poisoning the whole run
    sink.lock().unwrap_or_else(|e| e.into_inner())
}

impl Telemetry {
    /// The disabled handle (the default): records nothing, costs nothing.
    pub fn null() -> Self {
        Telemetry { shared: None }
    }

    /// A handle recording into a private [`RecordingSink`] with default
    /// capacities. Use [`Telemetry::recording_shared`] to keep direct
    /// access to the sink.
    pub fn recording() -> Self {
        Self::recording_shared().0
    }

    /// A recording handle plus the shared sink behind it, for callers that
    /// want to inspect events/spans directly after the run.
    pub fn recording_shared() -> (Self, Arc<Mutex<RecordingSink>>) {
        let sink = Arc::new(Mutex::new(RecordingSink::default()));
        (Self::with_sink(sink.clone()), sink)
    }

    /// A handle recording into any custom sink.
    pub fn with_sink(sink: Arc<Mutex<impl TelemetrySink + 'static>>) -> Self {
        Telemetry {
            shared: Some(Shared {
                epoch: Instant::now(),
                sink,
            }),
        }
    }

    /// Whether records go anywhere. Event construction sites should guard
    /// on this so the disabled path does no work at all.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Record one event observed at simulated time `t_sim_secs`.
    pub fn event(&self, t_sim_secs: f64, kind: EventKind) {
        if let Some(s) = &self.shared {
            lock(&s.sink).record_event(t_sim_secs, kind);
        }
    }

    /// Open a span (prefer the [`crate::span!`] macro). Inert against a
    /// disabled handle.
    pub fn span(&self, name: &'static str, level: Option<usize>) -> SpanGuard {
        SpanGuard {
            inner: self.shared.as_ref().map(|s| SpanInner {
                shared: s.clone(),
                name,
                level,
                start: Instant::now(),
            }),
        }
    }

    /// Record (or replace) a named block of whole-run counters (e.g. the
    /// driver's field-pool statistics). A no-op when disabled.
    pub fn stat_block(&self, name: &'static str, entries: &[(&'static str, u64)]) {
        if let Some(s) = &self.shared {
            lock(&s.sink).record_stat_block(name, entries);
        }
    }

    /// Sample one gauge into the named bounded metric series at simulated
    /// time `t_sim_secs` (see [`crate::metrics`]). A no-op when disabled —
    /// call sites that build the name dynamically should guard on
    /// [`Telemetry::is_enabled`] so the disabled path never formats.
    pub fn metric(&self, t_sim_secs: f64, name: &str, value: f64) {
        if let Some(s) = &self.shared {
            lock(&s.sink).record_metric(t_sim_secs, name, value);
        }
    }

    /// Drop everything recorded so far (used when simulated clocks reset,
    /// so setup work is excluded from the trace).
    pub fn clear(&self) {
        if let Some(s) = &self.shared {
            lock(&s.sink).clear();
        }
    }

    /// Text report from the sink; `None` when disabled or non-recording.
    pub fn summary(&self) -> Option<String> {
        self.shared.as_ref().and_then(|s| lock(&s.sink).summary())
    }

    /// JSONL export; `None` when disabled or non-recording.
    pub fn to_jsonl(&self) -> Option<String> {
        self.shared.as_ref().and_then(|s| lock(&s.sink).to_jsonl())
    }

    /// Chrome trace-event export; `None` when disabled or non-recording.
    pub fn to_chrome_trace(&self) -> Option<String> {
        self.shared
            .as_ref()
            .and_then(|s| lock(&s.sink).to_chrome_trace())
    }
}

struct SpanInner {
    shared: Shared,
    name: &'static str,
    level: Option<usize>,
    start: Instant,
}

/// RAII guard of an open span; records on drop. Inert (no clock reads)
/// when created from a disabled handle.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            let dur = i.start.elapsed().as_secs_f64();
            let start = i.start.duration_since(i.shared.epoch).as_secs_f64();
            lock(&i.shared.sink).record_span(SpanRecord {
                name: i.name,
                level: i.level,
                start_host_secs: start,
                dur_secs: dur,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{
        FaultEvent, FaultKind, GammaGateEvent, RedistributeEvent, TransferEvent,
    };

    fn gate(level: usize, verdict: GateVerdict) -> EventKind {
        EventKind::GammaGate(GammaGateEvent {
            step: 0,
            level,
            proactive: false,
            gain_secs: 1.0,
            cost_alpha_beta_w_secs: 0.2,
            delta_secs: 0.1,
            cost_upper_secs: 0.3,
            alpha_secs: 0.01,
            beta_secs_per_byte: 1e-7,
            move_bytes: 1024,
            gamma: 1.0,
            mae_widening_secs: 0.0,
            verdict,
            reason: "gate",
        })
    }

    #[test]
    fn null_handle_is_inert() {
        let tel = Telemetry::null();
        assert!(!tel.is_enabled());
        tel.event(0.0, gate(0, GateVerdict::Accept));
        {
            let _g = crate::span!(tel, "solve", 1);
        }
        assert!(tel.summary().is_none());
        assert!(tel.to_jsonl().is_none());
        assert!(tel.to_chrome_trace().is_none());
    }

    #[test]
    fn recording_sink_tallies_and_routes() {
        let (tel, sink) = Telemetry::recording_shared();
        assert!(tel.is_enabled());
        tel.event(0.5, gate(0, GateVerdict::Accept));
        tel.event(0.6, gate(0, GateVerdict::Reject));
        tel.event(0.7, gate(2, GateVerdict::Deferred));
        tel.event(
            0.8,
            EventKind::Redistribute(RedistributeEvent {
                step: 0,
                level: 0,
                moved_cells: 512,
                moves: 3,
                aborted: false,
                delta_secs: 0.1,
            }),
        );
        tel.event(
            0.9,
            EventKind::Transfer(TransferEvent {
                src: 0,
                dst: 4,
                bytes: 4096,
                queue_secs: 0.001,
                transfer_secs: 0.01,
                remote: true,
                failed: false,
            }),
        );
        {
            let _g = crate::span!(tel, "solve", 0);
        }
        let s = sink.lock().unwrap();
        let c = s.counts();
        assert_eq!(c.gates, 3);
        assert_eq!(c.gate_accepts, 1);
        assert_eq!(c.redistributes, 1);
        assert_eq!(c.transfers, 1);
        assert_eq!(s.gate_by_level()[&0].accept, 1);
        assert_eq!(s.gate_by_level()[&0].reject, 1);
        assert_eq!(s.gate_by_level()[&2].deferred, 1);
        assert_eq!(s.gate_by_level()[&0].total(), 2);
        // seq is a total order across both rings
        let seqs: Vec<u64> = s.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.spans().len(), 1);
        assert_eq!(s.spans()[0].name, "solve");
        assert_eq!(s.transfer_latency_hist().count(), 1);
        assert_eq!(
            RecordingSink::routing_of(&gate(0, GateVerdict::Accept)),
            "decisions"
        );
    }

    #[test]
    fn stat_blocks_replace_by_name_and_survive_in_summary() {
        let (tel, sink) = Telemetry::recording_shared();
        tel.stat_block("field_pool", &[("hits", 1), ("misses", 2)]);
        tel.stat_block("field_pool", &[("hits", 10), ("misses", 2)]);
        {
            let s = sink.lock().unwrap();
            assert_eq!(s.stat_blocks().len(), 1);
            assert_eq!(s.stat_blocks()["field_pool"], vec![("hits", 10), ("misses", 2)]);
        }
        let text = tel.summary().unwrap();
        assert!(text.contains("field_pool"), "{text}");
        assert!(text.contains("hits"), "{text}");
        // null handles stay inert
        Telemetry::null().stat_block("field_pool", &[("hits", 1)]);
    }

    #[test]
    fn clear_resets_but_keeps_capacities() {
        let (tel, sink) = Telemetry::recording_shared();
        tel.event(
            0.0,
            EventKind::Fault(FaultEvent {
                step: 0,
                kind: FaultKind::Quarantine { group: 1 },
            }),
        );
        tel.clear();
        let s = sink.lock().unwrap();
        assert_eq!(s.counts().faults, 0);
        assert!(s.events().is_empty());
    }

    #[test]
    fn metrics_record_through_the_handle_and_null_stays_inert() {
        let (tel, sink) = Telemetry::recording_shared();
        for i in 0..10 {
            tel.metric(i as f64, "group_load:g0", 100.0 + i as f64);
        }
        let s = sink.lock().unwrap();
        let m = s.metric("group_load:g0").expect("series exists");
        assert_eq!(m.observed(), 10);
        assert_eq!(m.last(), (9.0, 109.0));
        assert!(s.metric("no_such_series").is_none());
        // gates sampled a derived series too? none recorded here
        assert_eq!(s.metrics().len(), 1);
        Telemetry::null().metric(0.0, "group_load:g0", 1.0);
    }

    #[test]
    fn anomalies_join_the_decision_ring_with_counts() {
        use crate::metrics::{IMBALANCE_STUCK_STREAK, IMBALANCE_STUCK_THRESHOLD};
        let (tel, sink) = Telemetry::recording_shared();
        for i in 0..IMBALANCE_STUCK_STREAK {
            tel.metric(i as f64, "imbalance", IMBALANCE_STUCK_THRESHOLD + 1.0);
        }
        let s = sink.lock().unwrap();
        assert_eq!(s.counts().anomalies, 1);
        assert_eq!(s.anomaly_tally(), [1, 0, 0, 0]);
        let evs = s.events();
        assert_eq!(evs.len(), 1);
        match &evs[0].kind {
            EventKind::Anomaly(a) => {
                assert_eq!(a.kind, crate::event::AnomalyKind::ImbalanceStuck);
                assert!(evs[0].kind.is_decision());
            }
            other => panic!("expected anomaly, got {other:?}"),
        }
        // the triggering sample's simulated time stamps the anomaly
        assert_eq!(evs[0].t_sim_secs, (IMBALANCE_STUCK_STREAK - 1) as f64);
    }

    #[test]
    fn gate_events_derive_an_accept_rate_series() {
        let (tel, sink) = Telemetry::recording_shared();
        tel.event(0.1, gate(0, GateVerdict::Accept));
        tel.event(0.2, gate(0, GateVerdict::Reject));
        let s = sink.lock().unwrap();
        let m = s.metric("gate_accept_rate").expect("derived series");
        assert_eq!(m.observed(), 2);
        assert_eq!(m.points(), &[(0.1, 1.0), (0.2, 0.5)]);
    }

    #[test]
    fn clear_keeps_the_metric_capacity() {
        let (tel, sink) = Telemetry::recording_shared();
        sink.lock().unwrap().set_metric_capacity(16);
        tel.metric(0.0, "x", 1.0);
        tel.clear();
        tel.metric(0.0, "x", 1.0);
        let s = sink.lock().unwrap();
        assert_eq!(s.metric("x").unwrap().capacity(), 16);
        assert_eq!(s.metric("x").unwrap().observed(), 1);
    }
}
