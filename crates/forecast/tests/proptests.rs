//! Property tests: window predictors stay inside the window's range,
//! shifting a window shifts the forecast monotonically, and MAE bookkeeping
//! is exact.

use forecast::{MaeTracker, Predictor, PredictorKind, SeriesForecaster, SlidingMean, SlidingMedian};
use proptest::prelude::*;

fn finite_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e9, 1..64)
}

proptest! {
    /// Mean and median forecasts never leave [min, max] of the last
    /// `window` observations.
    #[test]
    fn window_forecasts_stay_in_window_range(
        values in finite_series(),
        window in 1usize..12,
    ) {
        let mut mean = SlidingMean::new(window);
        let mut median = SlidingMedian::new(window);
        for (i, v) in values.iter().enumerate() {
            mean.observe(i as f64, *v);
            median.observe(i as f64, *v);
            let tail: Vec<f64> =
                values[..=i].iter().rev().take(window).copied().collect();
            let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let m = mean.forecast().unwrap();
            let d = median.forecast().unwrap();
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
            prop_assert!(d >= lo - 1e-9 && d <= hi + 1e-9);
        }
    }

    /// Monotone window updates: raising every observation by a positive
    /// delta raises (or holds) the mean and median forecasts.
    #[test]
    fn window_forecasts_are_monotone_in_the_window(
        values in finite_series(),
        window in 1usize..12,
        delta in 0.0f64..1e6,
    ) {
        let mut base_mean = SlidingMean::new(window);
        let mut up_mean = SlidingMean::new(window);
        let mut base_med = SlidingMedian::new(window);
        let mut up_med = SlidingMedian::new(window);
        for (i, v) in values.iter().enumerate() {
            base_mean.observe(i as f64, *v);
            up_mean.observe(i as f64, *v + delta);
            base_med.observe(i as f64, *v);
            up_med.observe(i as f64, *v + delta);
        }
        prop_assert!(up_mean.forecast().unwrap() >= base_mean.forecast().unwrap() - 1e-9);
        prop_assert!(up_med.forecast().unwrap() >= base_med.forecast().unwrap() - 1e-9);
    }

    /// MAE bookkeeping: mae·samples equals the summed absolute errors, and
    /// the mean sits between the smallest and largest single error.
    #[test]
    fn mae_bookkeeping_is_exact(
        pairs in prop::collection::vec((0.0f64..1e6, 0.0f64..1e6), 1..40),
    ) {
        let mut t = MaeTracker::default();
        let mut errs = Vec::new();
        for (f, a) in &pairs {
            t.record(*f, *a);
            errs.push((f - a).abs());
        }
        let total: f64 = errs.iter().sum();
        prop_assert_eq!(t.samples(), errs.len() as u64);
        prop_assert!((t.mae() * t.samples() as f64 - total).abs() <= 1e-6 * (1.0 + total));
        let lo = errs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = errs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(t.mae() >= lo - 1e-9 && t.mae() <= hi + 1e-9);
    }

    /// Same seed + same stream ⇒ bit-identical adaptive forecasts, choices,
    /// and MAE, regardless of the stream contents.
    #[test]
    fn adaptive_series_is_deterministic(
        values in finite_series(),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut s = SeriesForecaster::new(PredictorKind::Adaptive, seed);
            let mut trace = Vec::new();
            for (i, v) in values.iter().enumerate() {
                s.observe(i as f64, *v);
                trace.push((
                    s.forecast().map(f64::to_bits),
                    s.mae().to_bits(),
                    s.selector().map(|sel| sel.best_index()),
                ));
            }
            trace
        };
        prop_assert_eq!(run(), run());
    }
}
