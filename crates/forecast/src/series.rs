//! Forecast state for one scalar series, and the α/β/bandwidth bundle a
//! link estimator keeps per WAN link.

use crate::kind::PredictorKind;
use crate::predictor::{ForecastValue, MaeTracker, Predictor};
use crate::predictors::Model;
use crate::{derive_seed, AdaptiveSelector};

/// One scalar observation stream with a model, out-of-sample MAE tracking,
/// and the latest raw observation kept alongside the forecast.
#[derive(Clone, Debug)]
pub struct SeriesForecaster {
    model: Model,
    mae: MaeTracker,
    last: Option<(f64, f64)>,
}

impl SeriesForecaster {
    pub fn new(kind: PredictorKind, seed: u64) -> Self {
        SeriesForecaster { model: kind.build(seed), mae: MaeTracker::default(), last: None }
    }

    /// Fold in an observation at time `t` (seconds). The pre-observation
    /// forecast is charged to the MAE tracker first, so `mae()` measures
    /// true prediction error, not in-sample fit.
    pub fn observe(&mut self, t: f64, value: f64) {
        if !value.is_finite() {
            return;
        }
        if let Some(f) = self.model.forecast() {
            self.mae.record(f, value);
        }
        self.model.observe(t, value);
        self.last = Some((t, value));
    }

    /// Point forecast of the next observation (`None` before data).
    pub fn forecast(&self) -> Option<f64> {
        self.model.forecast()
    }

    /// Forecast with the running MAE as its symmetric error bar.
    pub fn forecast_value(&self) -> Option<ForecastValue> {
        self.model.forecast().map(|value| ForecastValue { value, error: self.mae.mae() })
    }

    /// Mean absolute one-step forecast error so far.
    pub fn mae(&self) -> f64 {
        self.mae.mae()
    }

    /// Number of scored (forecast, observation) pairs.
    pub fn scored_samples(&self) -> u64 {
        self.mae.samples()
    }

    /// The latest raw `(t, value)` observation.
    pub fn last_observation(&self) -> Option<(f64, f64)> {
        self.last
    }

    /// Name of the configured model (`"adaptive"` for a selector).
    pub fn model_name(&self) -> String {
        self.model.name()
    }

    /// The selector panel, when this series runs the adaptive model.
    pub fn selector(&self) -> Option<&AdaptiveSelector> {
        match &self.model {
            Model::Selector(s) => Some(s),
            _ => None,
        }
    }
}

/// The three per-link series of the §4.2 probe: latency α (s), inverse
/// bandwidth β (s/byte), and the derived effective bandwidth 1/β (byte/s).
#[derive(Clone, Debug)]
pub struct LinkForecast {
    pub alpha: SeriesForecaster,
    pub beta: SeriesForecaster,
    pub bandwidth: SeriesForecaster,
}

impl LinkForecast {
    pub fn new(kind: PredictorKind, seed: u64) -> Self {
        LinkForecast {
            alpha: SeriesForecaster::new(kind, derive_seed(seed, 1)),
            beta: SeriesForecaster::new(kind, derive_seed(seed, 2)),
            bandwidth: SeriesForecaster::new(kind, derive_seed(seed, 3)),
        }
    }

    /// Fold one probe result. `beta` must already be floored above zero by
    /// the prober; the bandwidth series observes `1/β`.
    pub fn observe_probe(&mut self, t: f64, alpha: f64, beta: f64) {
        self.alpha.observe(t, alpha);
        self.beta.observe(t, beta);
        if beta > 0.0 {
            self.bandwidth.observe(t, 1.0 / beta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_mae_is_out_of_sample() {
        let mut s = SeriesForecaster::new(PredictorKind::LastValue, 0);
        s.observe(0.0, 10.0); // no prior forecast — unscored
        assert_eq!(s.scored_samples(), 0);
        s.observe(1.0, 14.0); // forecast was 10, err 4
        s.observe(2.0, 14.0); // forecast was 14, err 0
        assert_eq!(s.scored_samples(), 2);
        assert!((s.mae() - 2.0).abs() < 1e-12);
        let f = s.forecast_value().unwrap();
        assert_eq!(f.value, 14.0);
        assert!((f.error - 2.0).abs() < 1e-12);
    }

    #[test]
    fn link_forecast_derives_bandwidth() {
        let mut lf = LinkForecast::new(PredictorKind::LastValue, 3);
        lf.observe_probe(0.0, 0.006, 1.0 / 19.375e6);
        let bw = lf.bandwidth.forecast().unwrap();
        assert!((bw - 19.375e6).abs() / 19.375e6 < 1e-9);
        assert_eq!(lf.alpha.forecast(), Some(0.006));
    }

    #[test]
    fn same_seed_same_stream_is_bit_identical() {
        let run = |seed: u64| {
            let mut s = SeriesForecaster::new(PredictorKind::Adaptive, seed);
            let mut out = Vec::new();
            for i in 0..50 {
                let v = 10.0 + ((i * 37) % 11) as f64;
                s.observe(i as f64, v);
                out.push((s.forecast().map(f64::to_bits), s.mae().to_bits()));
            }
            out
        };
        assert_eq!(run(99), run(99));
    }
}
