//! The predictor contract plus forecast-error bookkeeping.

/// A one-step-ahead predictor over a scalar observation stream.
///
/// Implementations must be deterministic: the forecast after a sequence of
/// `observe` calls is a pure function of the constructor arguments and the
/// observed `(t, value)` pairs. Non-finite observations are discarded so a
/// single bad probe cannot poison the state.
pub trait Predictor {
    /// Fold in an observation made at simulated time `t` (seconds).
    fn observe(&mut self, t: f64, value: f64);

    /// Forecast the next observation; `None` until the first observation.
    fn forecast(&self) -> Option<f64>;

    /// Short stable name for tables and traces (`"ewma(0.30)"`, `"median(5)"`, …).
    fn name(&self) -> String;
}

/// A forecast with a symmetric error bar derived from the predictor's
/// running mean absolute error — the "confidence interval" the γ-gate
/// widens the Eq.-1 cost by.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForecastValue {
    /// Point forecast of the next observation.
    pub value: f64,
    /// One-sided error bar (≥ 0), typically the series MAE.
    pub error: f64,
}

impl ForecastValue {
    /// A forecast with no uncertainty (reactive mode: the latest sample).
    pub fn exact(value: f64) -> Self {
        ForecastValue { value, error: 0.0 }
    }

    /// Pessimistic bound: forecast plus the error bar.
    pub fn upper(&self) -> f64 {
        self.value + self.error
    }

    /// Optimistic bound, floored at zero (α, β, bandwidth and load are all
    /// non-negative quantities).
    pub fn lower(&self) -> f64 {
        (self.value - self.error).max(0.0)
    }
}

/// Running mean-absolute-error accumulator for one (predictor, series) pair.
///
/// `record` is called with the forecast made *before* the matching
/// observation was folded in, so the tracker measures true out-of-sample
/// error, NWS-style.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MaeTracker {
    samples: u64,
    sum_abs_err: f64,
}

impl MaeTracker {
    /// Record one (forecast, actual) pair; non-finite pairs are discarded.
    pub fn record(&mut self, forecast: f64, actual: f64) {
        let err = (forecast - actual).abs();
        if err.is_finite() {
            self.sum_abs_err += err;
            self.samples += 1;
        }
    }

    /// Mean absolute error so far (0 before any recorded pair).
    pub fn mae(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_abs_err / self.samples as f64
        }
    }

    /// Number of (forecast, actual) pairs recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total absolute error mass (MAE numerator) — exposed for tests.
    pub fn sum_abs_err(&self) -> f64 {
        self.sum_abs_err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_starts_at_zero_and_averages() {
        let mut t = MaeTracker::default();
        assert_eq!(t.mae(), 0.0);
        t.record(1.0, 3.0); // err 2
        t.record(5.0, 4.0); // err 1
        assert!((t.mae() - 1.5).abs() < 1e-12);
        assert_eq!(t.samples(), 2);
    }

    #[test]
    fn mae_discards_non_finite() {
        let mut t = MaeTracker::default();
        t.record(f64::NAN, 1.0);
        t.record(1.0, f64::INFINITY);
        assert_eq!(t.samples(), 0);
        assert_eq!(t.mae(), 0.0);
    }

    #[test]
    fn forecast_value_bounds() {
        let f = ForecastValue { value: 2.0, error: 3.0 };
        assert_eq!(f.upper(), 5.0);
        assert_eq!(f.lower(), 0.0); // clamped
        assert_eq!(ForecastValue::exact(2.0).upper(), 2.0);
    }
}
