//! The base predictor family: last-value, sliding mean, sliding median,
//! fixed-gain EWMA, and adaptive-gain EWMA.

use std::collections::VecDeque;

use crate::predictor::Predictor;
use crate::selector::AdaptiveSelector;

/// Trivial persistence model: the next value is the last value. This is the
/// paper's reactive §4.2 estimator (λ = 1) expressed as a predictor.
#[derive(Clone, Debug, Default)]
pub struct LastValue {
    state: Option<f64>,
}

impl LastValue {
    pub fn new() -> Self {
        LastValue::default()
    }
}

impl Predictor for LastValue {
    fn observe(&mut self, _t: f64, value: f64) {
        if value.is_finite() {
            self.state = Some(value);
        }
    }

    fn forecast(&self) -> Option<f64> {
        self.state
    }

    fn name(&self) -> String {
        "last".into()
    }
}

/// Arithmetic mean over a sliding window of the most recent observations.
#[derive(Clone, Debug)]
pub struct SlidingMean {
    window: usize,
    buf: VecDeque<f64>,
}

impl SlidingMean {
    /// `window` is clamped to at least 1.
    pub fn new(window: usize) -> Self {
        SlidingMean { window: window.max(1), buf: VecDeque::new() }
    }

    pub fn window(&self) -> usize {
        self.window
    }
}

impl Predictor for SlidingMean {
    fn observe(&mut self, _t: f64, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buf.push_back(value);
        while self.buf.len() > self.window {
            self.buf.pop_front();
        }
    }

    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            // Summed front-to-back each call: windows are small (≤ tens of
            // entries) and re-summing avoids drift from incremental updates.
            Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
        }
    }

    fn name(&self) -> String {
        format!("mean({})", self.window)
    }
}

/// Median over a sliding window — robust to the single-probe outliers a
/// bursty WAN produces.
#[derive(Clone, Debug)]
pub struct SlidingMedian {
    window: usize,
    buf: VecDeque<f64>,
}

impl SlidingMedian {
    /// `window` is clamped to at least 1.
    pub fn new(window: usize) -> Self {
        SlidingMedian { window: window.max(1), buf: VecDeque::new() }
    }

    pub fn window(&self) -> usize {
        self.window
    }
}

impl Predictor for SlidingMedian {
    fn observe(&mut self, _t: f64, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buf.push_back(value);
        while self.buf.len() > self.window {
            self.buf.pop_front();
        }
    }

    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.buf.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
        let mid = sorted.len() / 2;
        Some(if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        })
    }

    fn name(&self) -> String {
        format!("median({})", self.window)
    }
}

/// Fixed-gain exponentially weighted moving average.
///
/// The fold is exactly `gain·new + (1 − gain)·old` — the same expression
/// (and the same operation order, for bit-identical results) that
/// `LinkEstimator` used before this crate absorbed it. `gain = 1` degrades
/// to [`LastValue`] semantics.
#[derive(Clone, Debug)]
pub struct Ewma {
    gain: f64,
    state: Option<f64>,
}

impl Ewma {
    /// `gain` is clamped into (0, 1].
    pub fn new(gain: f64) -> Self {
        Ewma { gain: gain.clamp(f64::MIN_POSITIVE, 1.0), state: None }
    }

    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Predictor for Ewma {
    fn observe(&mut self, _t: f64, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.state = Some(match self.state {
            None => value,
            Some(prev) => self.gain * value + (1.0 - self.gain) * prev,
        });
    }

    fn forecast(&self) -> Option<f64> {
        self.state
    }

    fn name(&self) -> String {
        format!("ewma({:.2})", self.gain)
    }
}

/// Trigg–Leach adaptive-gain EWMA: the gain follows the tracking signal
/// |smoothed error| / smoothed |error|, so the model reacts fast after a
/// regime change (consistently signed errors) and smooths hard through
/// symmetric noise.
#[derive(Clone, Debug)]
pub struct AdaptiveEwma {
    state: Option<f64>,
    gain: f64,
    err: f64,
    abs_err: f64,
}

/// Smoothing constant for the tracking signal itself.
const TRACKING_GAIN: f64 = 0.3;
/// The adaptive gain stays inside this band: never frozen, never pure
/// last-value.
const MIN_GAIN: f64 = 0.05;
const MAX_GAIN: f64 = 0.95;

impl AdaptiveEwma {
    pub fn new() -> Self {
        AdaptiveEwma { state: None, gain: TRACKING_GAIN, err: 0.0, abs_err: 0.0 }
    }

    /// Current smoothing gain (moves inside [0.05, 0.95]).
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Default for AdaptiveEwma {
    fn default() -> Self {
        AdaptiveEwma::new()
    }
}

impl Predictor for AdaptiveEwma {
    fn observe(&mut self, _t: f64, value: f64) {
        if !value.is_finite() {
            return;
        }
        match self.state {
            None => self.state = Some(value),
            Some(prev) => {
                let e = value - prev;
                self.err = TRACKING_GAIN * e + (1.0 - TRACKING_GAIN) * self.err;
                self.abs_err = TRACKING_GAIN * e.abs() + (1.0 - TRACKING_GAIN) * self.abs_err;
                if self.abs_err > 0.0 {
                    self.gain = (self.err.abs() / self.abs_err).clamp(MIN_GAIN, MAX_GAIN);
                }
                self.state = Some(self.gain * value + (1.0 - self.gain) * prev);
            }
        }
    }

    fn forecast(&self) -> Option<f64> {
        self.state
    }

    fn name(&self) -> String {
        "adaptive-ewma".into()
    }
}

/// Closed enum over every model in the crate, so estimators stay `Clone` +
/// `Debug` without trait objects. The selector variant is boxed: a selector
/// owns a `Vec<Model>` of its candidates.
#[derive(Clone, Debug)]
pub enum Model {
    Last(LastValue),
    Mean(SlidingMean),
    Median(SlidingMedian),
    Ewma(Ewma),
    AdaptiveEwma(AdaptiveEwma),
    Selector(Box<AdaptiveSelector>),
}

impl Predictor for Model {
    fn observe(&mut self, t: f64, value: f64) {
        match self {
            Model::Last(m) => m.observe(t, value),
            Model::Mean(m) => m.observe(t, value),
            Model::Median(m) => m.observe(t, value),
            Model::Ewma(m) => m.observe(t, value),
            Model::AdaptiveEwma(m) => m.observe(t, value),
            Model::Selector(m) => m.observe(t, value),
        }
    }

    fn forecast(&self) -> Option<f64> {
        match self {
            Model::Last(m) => m.forecast(),
            Model::Mean(m) => m.forecast(),
            Model::Median(m) => m.forecast(),
            Model::Ewma(m) => m.forecast(),
            Model::AdaptiveEwma(m) => m.forecast(),
            Model::Selector(m) => m.forecast(),
        }
    }

    fn name(&self) -> String {
        match self {
            Model::Last(m) => m.name(),
            Model::Mean(m) => m.name(),
            Model::Median(m) => m.name(),
            Model::Ewma(m) => m.name(),
            Model::AdaptiveEwma(m) => m.name(),
            Model::Selector(m) => m.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks_latest() {
        let mut p = LastValue::new();
        assert_eq!(p.forecast(), None);
        p.observe(0.0, 3.0);
        p.observe(1.0, 7.0);
        assert_eq!(p.forecast(), Some(7.0));
    }

    #[test]
    fn sliding_mean_honors_window() {
        let mut p = SlidingMean::new(3);
        for (i, v) in [10.0, 2.0, 4.0, 6.0].iter().enumerate() {
            p.observe(i as f64, *v);
        }
        // window holds [2, 4, 6]; the initial 10 has been evicted
        assert!((p.forecast().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_median_is_outlier_robust() {
        let mut p = SlidingMedian::new(5);
        for (i, v) in [5.0, 5.0, 5.0, 500.0, 5.0].iter().enumerate() {
            p.observe(i as f64, *v);
        }
        assert_eq!(p.forecast(), Some(5.0));
    }

    #[test]
    fn sliding_median_even_window_averages() {
        let mut p = SlidingMedian::new(4);
        for (i, v) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            p.observe(i as f64, *v);
        }
        assert!((p.forecast().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ewma_matches_the_probe_fold_expression() {
        // Bit-identical to the pre-forecast LinkEstimator fold:
        // λ·new + (1 − λ)·old.
        let lambda = 0.4;
        let mut p = Ewma::new(lambda);
        p.observe(0.0, 10.0);
        p.observe(1.0, 20.0);
        let expected = lambda * 20.0 + (1.0 - lambda) * 10.0;
        assert_eq!(p.forecast(), Some(expected));
    }

    #[test]
    fn ewma_gain_one_is_last_value() {
        let mut p = Ewma::new(1.0);
        p.observe(0.0, 1.0);
        p.observe(1.0, 9.0);
        assert_eq!(p.forecast(), Some(9.0));
    }

    #[test]
    fn adaptive_ewma_raises_gain_after_regime_change() {
        let mut p = AdaptiveEwma::new();
        for i in 0..20 {
            p.observe(i as f64, 10.0);
        }
        let gain_quiet = p.gain();
        for i in 20..26 {
            p.observe(i as f64, 100.0); // consistent one-sided error
        }
        assert!(p.gain() > gain_quiet);
        // and the state has moved most of the way to the new level
        assert!(p.forecast().unwrap() > 80.0);
    }

    #[test]
    fn predictors_ignore_non_finite() {
        let mut p = SlidingMean::new(4);
        p.observe(0.0, 2.0);
        p.observe(1.0, f64::NAN);
        p.observe(2.0, f64::INFINITY);
        assert_eq!(p.forecast(), Some(2.0));
    }
}
