//! NWS-style adaptive predictor selection: run every candidate model on the
//! stream, score each by out-of-sample MAE, forward the current best.

use crate::predictor::{MaeTracker, Predictor};
use crate::predictors::Model;
use crate::splitmix64;

/// Runs a panel of candidate models in lockstep over one observation stream
/// and forecasts with whichever has the lowest mean absolute error so far.
///
/// Scoring is strictly out-of-sample: each candidate is asked for its
/// forecast *before* the new observation is folded in, and that forecast is
/// charged against the observation. Exact MAE ties (common before the
/// trackers have data) are broken by a seeded deterministic hash, so the
/// selector is reproducible from `(seed, stream)` alone.
#[derive(Clone, Debug)]
pub struct AdaptiveSelector {
    members: Vec<(Model, MaeTracker)>,
    seed: u64,
}

impl AdaptiveSelector {
    /// Selector over an explicit candidate panel. Panels are typically built
    /// via [`crate::PredictorKind::Adaptive`].
    pub fn new(members: Vec<Model>, seed: u64) -> Self {
        assert!(!members.is_empty(), "selector needs at least one candidate");
        AdaptiveSelector {
            members: members.into_iter().map(|m| (m, MaeTracker::default())).collect(),
            seed,
        }
    }

    /// Index of the current best candidate (lowest MAE, seeded tie-break).
    pub fn best_index(&self) -> usize {
        let mut best = 0usize;
        let mut best_key = self.rank_key(0);
        for i in 1..self.members.len() {
            let key = self.rank_key(i);
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        best
    }

    /// `(mae, tie_hash)` — lexicographic order picks the lowest-error model,
    /// with exact ties resolved by the seeded hash.
    fn rank_key(&self, i: usize) -> (f64, u64) {
        (self.members[i].1.mae(), splitmix64(self.seed ^ i as u64))
    }

    /// Name of the model currently forwarded by [`Predictor::forecast`].
    pub fn best_name(&self) -> String {
        self.members[self.best_index()].0.name()
    }

    /// Per-candidate `(name, mae, samples)` scoreboard.
    pub fn scoreboard(&self) -> Vec<(String, f64, u64)> {
        self.members
            .iter()
            .map(|(m, t)| (m.name(), t.mae(), t.samples()))
            .collect()
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Predictor for AdaptiveSelector {
    fn observe(&mut self, t: f64, value: f64) {
        if !value.is_finite() {
            return;
        }
        for (model, tracker) in &mut self.members {
            if let Some(f) = model.forecast() {
                tracker.record(f, value);
            }
            model.observe(t, value);
        }
    }

    fn forecast(&self) -> Option<f64> {
        self.members[self.best_index()].0.forecast()
    }

    fn name(&self) -> String {
        "adaptive".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::{Ewma, LastValue, SlidingMean};

    fn panel() -> Vec<Model> {
        vec![
            Model::Last(LastValue::new()),
            Model::Mean(SlidingMean::new(4)),
            Model::Ewma(Ewma::new(0.3)),
        ]
    }

    #[test]
    fn selector_prefers_the_model_that_predicts_best() {
        // Alternating series: the mean nails it, last-value is always wrong
        // by the full amplitude.
        let mut s = AdaptiveSelector::new(panel(), 42);
        for i in 0..40 {
            let v = if i % 2 == 0 { 0.0 } else { 10.0 };
            s.observe(i as f64, v);
        }
        assert_eq!(s.best_name(), "mean(4)");
    }

    #[test]
    fn selector_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = AdaptiveSelector::new(panel(), seed);
            let mut picks = Vec::new();
            for i in 0..30 {
                s.observe(i as f64, (i as f64 * 0.7).sin() * 5.0 + 10.0);
                picks.push((s.best_index(), s.forecast()));
            }
            picks
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn scoreboard_tracks_out_of_sample_error() {
        let mut s = AdaptiveSelector::new(panel(), 1);
        s.observe(0.0, 10.0);
        // first observation: no model had a forecast yet, so nothing scored
        assert!(s.scoreboard().iter().all(|(_, _, n)| *n == 0));
        s.observe(1.0, 12.0);
        assert!(s.scoreboard().iter().all(|(_, _, n)| *n == 1));
        // every model forecast 10.0 before seeing 12.0
        for (_, mae, _) in s.scoreboard() {
            assert!((mae - 2.0).abs() < 1e-12);
        }
    }
}
