//! Serializable-by-name predictor configuration.

use crate::predictors::{AdaptiveEwma, Ewma, LastValue, Model, SlidingMean, SlidingMedian};
use crate::selector::AdaptiveSelector;
use crate::{derive_seed, Predictor};

/// Default window for the sliding mean in the adaptive panel.
pub const DEFAULT_MEAN_WINDOW: usize = 8;
/// Default window for the sliding median in the adaptive panel.
pub const DEFAULT_MEDIAN_WINDOW: usize = 5;
/// Default gain for the fixed-gain EWMA in the adaptive panel.
pub const DEFAULT_EWMA_GAIN: f64 = 0.3;

/// Which predictor a series should run — the config-surface twin of
/// [`Model`]. `Adaptive` builds the full candidate panel under an
/// [`AdaptiveSelector`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PredictorKind {
    /// Persistence: forecast = latest sample (the paper's reactive mode).
    LastValue,
    /// Mean of the last `window` samples.
    SlidingMean { window: usize },
    /// Median of the last `window` samples.
    SlidingMedian { window: usize },
    /// Fixed-gain EWMA, `forecast = gain·new + (1 − gain)·old`.
    Ewma { gain: f64 },
    /// Trigg–Leach adaptive-gain EWMA.
    AdaptiveEwma,
    /// MAE-tracked selector over the whole default family.
    Adaptive,
}

impl PredictorKind {
    /// Instantiate the model. `seed` only feeds deterministic tie-breaking
    /// inside the adaptive selector; fixed models ignore it.
    pub fn build(self, seed: u64) -> Model {
        match self {
            PredictorKind::LastValue => Model::Last(LastValue::new()),
            PredictorKind::SlidingMean { window } => Model::Mean(SlidingMean::new(window)),
            PredictorKind::SlidingMedian { window } => Model::Median(SlidingMedian::new(window)),
            PredictorKind::Ewma { gain } => Model::Ewma(Ewma::new(gain)),
            PredictorKind::AdaptiveEwma => Model::AdaptiveEwma(AdaptiveEwma::new()),
            PredictorKind::Adaptive => Model::Selector(Box::new(AdaptiveSelector::new(
                vec![
                    Model::Last(LastValue::new()),
                    Model::Mean(SlidingMean::new(DEFAULT_MEAN_WINDOW)),
                    Model::Median(SlidingMedian::new(DEFAULT_MEDIAN_WINDOW)),
                    Model::Ewma(Ewma::new(DEFAULT_EWMA_GAIN)),
                    Model::AdaptiveEwma(AdaptiveEwma::new()),
                ],
                derive_seed(seed, 0x5E1E_C70A),
            ))),
        }
    }

    /// Stable label for bench tables and traces.
    pub fn label(&self) -> String {
        // Labels match Model::name() so tables and traces agree.
        self.build(0).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(PredictorKind::LastValue.label(), "last");
        assert_eq!(PredictorKind::SlidingMean { window: 8 }.label(), "mean(8)");
        assert_eq!(PredictorKind::SlidingMedian { window: 5 }.label(), "median(5)");
        assert_eq!(PredictorKind::Ewma { gain: 0.3 }.label(), "ewma(0.30)");
        assert_eq!(PredictorKind::AdaptiveEwma.label(), "adaptive-ewma");
        assert_eq!(PredictorKind::Adaptive.label(), "adaptive");
    }

    #[test]
    fn adaptive_panel_has_the_whole_family() {
        let m = PredictorKind::Adaptive.build(9);
        match m {
            Model::Selector(s) => assert_eq!(s.scoreboard().len(), 5),
            other => panic!("expected selector, got {other:?}"),
        }
    }
}
