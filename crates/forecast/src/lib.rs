//! # forecast — network-weather prediction substrate
//!
//! Seeded, deterministic time-series predictors in the style of the Network
//! Weather Service (Wolski et al.), which the paper's grid environment builds
//! on. A small family of one-step-ahead models — last-value, sliding-window
//! mean, sliding median, fixed-gain EWMA, adaptive-gain EWMA — plus an
//! *adaptive selector* that tracks each model's mean absolute error on the
//! stream and forwards the forecast of whichever model has predicted best so
//! far.
//!
//! The crate is the single home for exponential smoothing and forecast
//! bookkeeping in the workspace: `topology::probe::LinkEstimator` folds its
//! α/β probe samples through [`LinkForecast`], `core` widens the Eq.-1 cost
//! by the forecast error before applying the γ-gate, and `bench` sweeps
//! [`PredictorKind`]s in its ablation tables.
//!
//! Everything here is plain arithmetic over `f64` streams: no clocks, no
//! randomness at run time (the only use of the seed is deterministic
//! tie-breaking and seed derivation), so the same seed and the same
//! observation stream reproduce bit-identical forecasts on any host.

pub mod kind;
pub mod predictor;
pub mod predictors;
pub mod selector;
pub mod series;

pub use kind::PredictorKind;
pub use predictor::{ForecastValue, MaeTracker, Predictor};
pub use predictors::{AdaptiveEwma, Ewma, LastValue, Model, SlidingMean, SlidingMedian};
pub use selector::AdaptiveSelector;
pub use series::{LinkForecast, SeriesForecaster};

/// SplitMix64 — the same tiny deterministic mixer the fault scheduler uses;
/// here it only breaks MAE ties and derives per-series seeds.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a decorrelated child seed from a base seed and a salt (link id,
/// group id, series index, …). Deterministic; distinct salts give distinct
/// streams.
pub fn derive_seed(base: u64, salt: u64) -> u64 {
    splitmix64(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_salt_sensitive() {
        assert_eq!(derive_seed(7, 1), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
    }
}
