//! The `ShockPool3D` experiment of §5: a tilted planar shock on the
//! ANL + NCSA WAN testbed.
//!
//! Steps the distributed-DLB run manually to show the grid hierarchy
//! evolving (more and more grids created along the moving shock plane) and
//! the global gain/cost decisions being taken after each level-0 step, then
//! compares against the parallel-DLB baseline.
//!
//! ```text
//! cargo run --release --example shockpool3d
//! ```

use samr_dlb::prelude::*;
use samr_engine::Scheme;
use topology::ProcId;

fn main() {
    let n = 2; // processors per site; try 4 or 8 for bigger gaps
    let steps = 4;
    let sys = presets::anl_ncsa_wan(n, n, 7);
    println!("system: {}\n", sys.describe());

    // --- distributed DLB, stepped manually for visibility -----------------
    let cfg = RunConfig::new(
        AppKind::ShockPool3D,
        24,
        steps,
        Scheme::distributed_default(),
    );
    let mut driver = Driver::new(sys.clone(), cfg);
    for step in 0..steps {
        driver.step_once();
        let h = driver.hierarchy();
        let grids_per_level: Vec<usize> =
            (0..h.num_levels()).map(|l| h.level_ids(l).len()).collect();
        // per-group level-0 ownership
        let mut group_cells = vec![0i64; sys.ngroups()];
        for id in h.level_ids(0) {
            let p = h.patch(*id);
            group_cells[sys.group_of(ProcId(p.owner)).0] += p.cells();
        }
        let decision = driver.decisions().last().map(|d| {
            if d.invoked {
                format!(
                    "redistributed (gain {:.1}s > γ·cost {:.3}s)",
                    d.gain.gain_secs,
                    d.cost.map(|c| c.total_secs()).unwrap_or(0.0)
                )
            } else if d.cost.is_some() {
                "deferred (gain too small for current network cost)".into()
            } else {
                "balanced".into()
            }
        });
        println!(
            "step {step}: grids/level {grids_per_level:?}, level-0 cells by group {group_cells:?}, {}",
            decision.unwrap_or_default()
        );
    }
    let dist = driver.finish();

    // --- parallel DLB baseline --------------------------------------------
    let cfg = RunConfig::new(AppKind::ShockPool3D, 24, steps, Scheme::Parallel);
    let par = Driver::new(sys, cfg).run();

    println!("\n{}", par.summary());
    println!("{}", dist.summary());
    println!(
        "\nimprovement: {:.1}%  (paper reports 2.6%..44.2% across 1+1..8+8)",
        metrics::improvement_percent(par.total_secs, dist.total_secs)
    );
}
