//! Quickstart: the smallest end-to-end run.
//!
//! Simulates a scalar advected blob on a two-site distributed system
//! (2 processors at each site joined by a WAN), once under the baseline
//! *parallel DLB* and once under the paper's *distributed DLB*, then prints
//! the execution-time breakdowns side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use samr_dlb::prelude::*;

fn main() {
    // a 2+2 distributed system: ANL + NCSA over the MREN OC-3 WAN preset
    let sys = presets::anl_ncsa_wan(2, 2, 7);
    println!("system: {}\n", sys.describe());

    for scheme in [
        samr_engine::Scheme::Parallel,
        samr_engine::Scheme::distributed_default(),
    ] {
        let cfg = RunConfig::new(AppKind::AdvectBlob, 16, 4, scheme);
        let result = Driver::new(sys.clone(), cfg).run();
        println!("{}", result.summary());
        println!(
            "    remote messages: {:>6}   remote bytes: {:>10}",
            result.breakdown.remote_msgs, result.breakdown.remote_bytes
        );
    }

    println!(
        "\nThe distributed scheme keeps children grids in their parents' group\n\
         and gates inter-group moves on the gain/cost heuristic, so it ships\n\
         far less data across the shared WAN."
    );
}
