//! Processor heterogeneity — the §4 capability the paper's homogeneous
//! testbeds could not exercise.
//!
//! Site B's processors run at 0.25×–4× the speed of site A's. The parallel
//! DLB distributes work *evenly* (it is weight-blind by design), while the
//! distributed DLB distributes proportionally to the relative performance
//! weights, so its advantage grows with the performance gap.
//!
//! ```text
//! cargo run --release --example heterogeneous
//! ```

use samr_dlb::prelude::*;
use samr_engine::Scheme;

fn main() {
    println!("ShockPool3D, 2+2 over the WAN; site-B speed relative to site-A varies\n");
    println!(
        "{:>6} {:>16} {:>17} {:>14}",
        "B rel", "parallel DLB", "distributed DLB", "improvement"
    );
    for rel in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let sys = presets::heterogeneous_wan(2, 2, rel, 7);
        let par = Driver::new(
            sys.clone(),
            RunConfig::new(AppKind::ShockPool3D, 24, 3, Scheme::Parallel),
        )
        .run();
        let dist = Driver::new(
            sys,
            RunConfig::new(AppKind::ShockPool3D, 24, 3, Scheme::distributed_default()),
        )
        .run();
        println!(
            "{:>5}x {:>15.1}s {:>16.1}s {:>13.1}%",
            rel,
            par.total_secs,
            dist.total_secs,
            metrics::improvement_percent(par.total_secs, dist.total_secs)
        );
    }
    println!(
        "\nThe even split leaves fast processors idle (or slow ones swamped);\n\
         weight-proportional distribution uses the whole machine."
    );
}
