//! Render a run's state as images: a mid-plane density slice of the
//! composite solution and a map of refinement depth, written as portable
//! graymaps (PGM — viewable with almost anything) into `viz/`.
//!
//! ```text
//! cargo run --release --example visualize
//! ls viz/
//! ```

use samr_dlb::prelude::*;
use samr_engine::Scheme;
use samr_mesh::{finest_value_at, ivec3};
use std::fmt::Write as _;

/// Write a PGM (max 255) from row-major values.
fn write_pgm(path: &str, w: usize, h: usize, vals: &[f64]) {
    let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
    let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut s = String::new();
    let _ = writeln!(s, "P2\n{w} {h}\n255");
    for row in 0..h {
        for col in 0..w {
            let v = vals[row * w + col];
            let g = ((v - lo) / span * 255.0).round() as u8;
            let _ = write!(s, "{g} ");
        }
        let _ = writeln!(s);
    }
    std::fs::write(path, s).expect("write image");
}

fn main() {
    let n0: i64 = 24;
    let steps = 4;
    let sys = presets::anl_ncsa_wan(2, 2, 7);
    let cfg = RunConfig::new(AppKind::ShockPool3D, n0, steps, Scheme::distributed_default());
    let mut driver = Driver::new(sys, cfg);

    std::fs::create_dir_all("viz").expect("mkdir viz");
    for step in 0..=steps {
        let h = driver.hierarchy();
        let z = n0 / 2;
        let mut density = Vec::with_capacity((n0 * n0) as usize);
        let mut depth = Vec::with_capacity((n0 * n0) as usize);
        for y in 0..n0 {
            for x in 0..n0 {
                let c = ivec3(x, y, z);
                let (lvl, rho) = finest_value_at(h, c, 0).unwrap_or((0, 0.0));
                density.push(rho);
                depth.push(lvl as f64);
            }
        }
        write_pgm(
            &format!("viz/density_step{step}.pgm"),
            n0 as usize,
            n0 as usize,
            &density,
        );
        write_pgm(
            &format!("viz/levels_step{step}.pgm"),
            n0 as usize,
            n0 as usize,
            &depth,
        );
        println!(
            "step {step}: wrote viz/density_step{step}.pgm and viz/levels_step{step}.pgm \
             ({} grids, {} levels)",
            h.num_patches(),
            h.num_levels()
        );
        if step < steps {
            driver.step_once();
        }
    }
    let result = driver.finish();
    println!("\n{}", result.summary());
    println!("The levels_* images show refinement tracking the tilted shock plane.");
}
