//! Anatomy of a run, as telemetry sees it: ShockPool3D on the faulty ANL +
//! NCSA WAN with a recording sink attached, exporting everything the
//! pipeline observed.
//!
//! Writes `results/trace_anatomy.trace.json` (open in chrome://tracing or
//! https://ui.perfetto.dev — pid 0 shows host wall-clock spans per level,
//! pid 1 shows the γ-gate / redistribute / fault / probe / transfer /
//! anomaly events on simulated time plus one counter track per bounded
//! metric series) and `results/trace_anatomy.jsonl` (meta line first, then
//! phase/stat/metric aggregates and one event per line — the input format
//! of `bench --bin report`), then prints the text summary.
//!
//! ```text
//! cargo run --release --example trace_anatomy
//! ```

use samr_dlb::prelude::*;
use samr_dlb::telemetry::TelemetrySink as _;
use samr_engine::Scheme;

fn main() {
    let n = 2;
    let steps = 6;
    // fault spans sized to the simulated run length so the degradation
    // protocol (retries, quarantine, rollback) actually shows up in traces
    let sys = presets::faulty_anl_ncsa_wan(n, n, 9, SimTime::from_secs(3600));
    println!("system: {}\n", sys.describe());

    let (tel, sink) = Telemetry::recording_shared();
    let mut cfg = RunConfig::new(
        AppKind::ShockPool3D,
        24,
        steps,
        Scheme::distributed_default(),
    );
    cfg.telemetry = tel;
    let res = Driver::new(sys, cfg).run();
    println!("{}\n", res.summary());
    println!(
        "field pool: hits {}  misses {}  bytes recycled {}  steady-state field allocs {}\n",
        res.pool.hits, res.pool.misses, res.pool.bytes_recycled, res.pool.steady_misses
    );

    let sink = sink.lock().unwrap();
    let _ = std::fs::create_dir_all("results");
    let trace = sink.to_chrome_trace().expect("recording sink exports a trace");
    std::fs::write("results/trace_anatomy.trace.json", trace).expect("write trace");
    let jsonl = sink.to_jsonl().expect("recording sink exports JSONL");
    std::fs::write("results/trace_anatomy.jsonl", jsonl).expect("write jsonl");
    println!("wrote results/trace_anatomy.trace.json (chrome://tracing / ui.perfetto.dev)");
    println!("wrote results/trace_anatomy.jsonl\n");

    // the same report rides on RunResult for callers that never touch the sink
    match &res.telemetry_summary {
        Some(s) => println!("{s}"),
        None => println!("(no telemetry summary — null handle?)"),
    }
}
