//! Network weather: the two-message α/β probe of §4.2 tracking a shared
//! WAN's dynamic background traffic, and the gain/cost gate adapting to it.
//!
//! First probes the MREN OC-3 preset link over two simulated minutes and
//! prints the reactive (latest-sample) and adaptive forecasts side by side
//! against the true effective bandwidth, with each one's running forecast
//! error; then runs ShockPool3D under two traffic regimes and shows how
//! many global redistributions the γ-gate admits in each.
//!
//! ```text
//! cargo run --release --example network_weather
//! ```

use samr_dlb::prelude::*;
use samr_engine::Scheme;
use topology::link::Link;
use topology::{LinkEstimator, SystemBuilder, TrafficModel};

fn main() {
    // --- probing a fluctuating link: reactive vs adaptive forecasts --------
    let link = presets::mren_oc3_wan(7);
    let mut reactive = LinkEstimator::paper_default();
    let mut adaptive =
        LinkEstimator::paper_default().with_predictor(forecast::PredictorKind::Adaptive, 7);
    println!("probing '{}' every 10 simulated seconds:", link.name);
    println!(
        "{:>6} {:>14} {:>15} {:>15} {:>16}",
        "t", "est alpha (ms)", "reactive MB/s", "adaptive MB/s", "true eff. MB/s"
    );
    for i in 0..12 {
        let t = SimTime::from_secs(i * 10);
        reactive.refresh(&link, t).expect("fault-free link probes cleanly");
        adaptive.refresh(&link, t).expect("fault-free link probes cleanly");
        let alpha_ms = reactive.alpha().unwrap() * 1e3;
        let reactive_bw = 1.0 / reactive.beta().unwrap() / 1e6;
        let adaptive_bw = 1.0 / adaptive.beta().unwrap() / 1e6;
        let true_bw = link.effective_bandwidth(t) / 1e6;
        println!(
            "{:>5}s {:>14.2} {:>15.2} {:>15.2} {:>16.2}",
            i * 10,
            alpha_ms,
            reactive_bw,
            adaptive_bw,
            true_bw
        );
    }
    println!(
        "\none-step β forecast error after {} scored probes:\n  \
         reactive (latest sample)   {:>8.2} ns/B\n  \
         adaptive selector          {:>8.2} ns/B  (currently answering with `{}`)",
        reactive.forecast_samples(),
        reactive.beta_mae() * 1e9,
        adaptive.beta_mae() * 1e9,
        adaptive
            .beta_selector()
            .map(|s| s.best_name())
            .unwrap_or_else(|| adaptive.model_name()),
    );

    // --- the γ-gate under quiet vs congested WAN ---------------------------
    println!("\nShockPool3D 2+2, distributed DLB, same workload, two WAN regimes:");
    for (name, traffic) in [
        ("quiet WAN", TrafficModel::Quiet),
        ("congested WAN (95% busy)", TrafficModel::Constant { load: 0.95 }),
    ] {
        let wan = Link::shared("WAN", SimTime::from_millis(6), 19.375e6, traffic);
        let sys = SystemBuilder::new()
            .group("ANL", 2, 1.0, presets::origin2000_intra())
            .group("NCSA", 2, 1.0, presets::origin2000_intra())
            .connect(0, 1, wan)
            .build();
        let res = Driver::new(
            sys,
            RunConfig::new(AppKind::ShockPool3D, 24, 4, Scheme::distributed_default()),
        )
        .run();
        println!(
            "  {:<26} total {:>8.1}s, global checks {}, redistributions {}",
            name, res.total_secs, res.global_checks, res.global_redistributions
        );
    }
    println!(
        "\nUnder congestion the measured β inflates the Eq.-1 cost, so the\n\
         scheme defers redistribution instead of fighting the network."
    );
}
