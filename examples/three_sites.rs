//! Beyond the paper's two-site testbeds: three sites with *heterogeneous
//! inter-site links* (ANL↔NCSA over MREN OC-3, both reachable from a third
//! site over a slower vBNS-class path).
//!
//! The distributed scheme generalizes unchanged: groups exchange workload
//! proportionally to compute power, and every donor/receiver pairing is
//! priced with that pair's probed α/β.
//!
//! ```text
//! cargo run --release --example three_sites
//! ```

use samr_dlb::prelude::*;
use samr_engine::Scheme;
use topology::ProcId;

fn main() {
    let sys = presets::three_site_wan(2, 2, 2, 7);
    println!("system: {}\n", sys.describe());

    let cfg = RunConfig::new(
        AppKind::ShockPool3D,
        24,
        4,
        Scheme::distributed_default(),
    );
    let mut driver = Driver::new(sys.clone(), cfg);
    for step in 0..4 {
        driver.step_once();
        let h = driver.hierarchy();
        // iteration-weighted workload per site
        let mut site_load = vec![0f64; sys.ngroups()];
        for p in h.iter() {
            let w = 2f64.powi(p.level as i32);
            site_load[sys.group_of(ProcId(p.owner)).0] += p.cells() as f64 * w;
        }
        println!(
            "step {step}: workload by site {:?}",
            site_load.iter().map(|w| *w as i64).collect::<Vec<_>>()
        );
    }
    let dist = driver.finish();

    let par = Driver::new(
        sys,
        RunConfig::new(AppKind::ShockPool3D, 24, 4, Scheme::Parallel),
    )
    .run();

    println!("\n{}", par.summary());
    println!("{}", dist.summary());
    println!(
        "\nimprovement: {:.1}%",
        metrics::improvement_percent(par.total_secs, dist.total_secs)
    );
}
