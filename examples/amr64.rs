//! The `AMR64` experiment of §5: a galaxy-cluster-formation analog (fluid +
//! Poisson + particles) on the two-machine ANL Gigabit-LAN testbed.
//!
//! Grids appear scattered across the whole domain (around the seeded
//! overdensities) and concentrate as the particles fall in; the run prints
//! the hierarchy evolution and the scheme comparison.
//!
//! ```text
//! cargo run --release --example amr64
//! ```

use samr_dlb::prelude::*;
use samr_engine::Scheme;

fn main() {
    let n = 2;
    let steps = 4;
    let sys = presets::anl_lan_pair(n, n, 7);
    println!("system: {}\n", sys.describe());

    let cfg = RunConfig::new(AppKind::Amr64, 24, steps, Scheme::distributed_default());
    let mut driver = Driver::new(sys.clone(), cfg);
    for step in 0..steps {
        driver.step_once();
        let h = driver.hierarchy();
        let grids: Vec<usize> = (0..h.num_levels()).map(|l| h.level_ids(l).len()).collect();
        let cells: Vec<i64> = (0..h.num_levels()).map(|l| h.level_cells(l)).collect();
        println!("step {step}: grids per level {grids:?}, cells per level {cells:?}");
    }
    let dist = driver.finish();

    let cfg = RunConfig::new(AppKind::Amr64, 24, steps, Scheme::Parallel);
    let par = Driver::new(sys, cfg).run();

    println!("\n{}", par.summary());
    println!("{}", dist.summary());
    println!(
        "\nimprovement: {:.1}%  (paper reports 9.0%..45.9% across 1+1..8+8)",
        metrics::improvement_percent(par.total_secs, dist.total_secs)
    );
}
