//! Checkpoint/restart: save a run's physics state mid-flight and continue
//! it later — possibly on a different machine configuration, the way a grid
//! job would resume after its time slice at one site and migrate to another.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use samr_dlb::prelude::*;
use samr_engine::{Checkpoint, Scheme};

fn main() {
    let cfg = || {
        let mut c = RunConfig::new(
            AppKind::ShockPool3D,
            16,
            4,
            Scheme::distributed_default(),
        );
        c.max_levels = 3;
        c
    };

    // phase 1: two steps on the ANL+NCSA pair
    let sys1 = presets::anl_ncsa_wan(2, 2, 7);
    println!("phase 1 on {}", sys1.describe());
    let mut driver = Driver::new(sys1, cfg());
    driver.step_once();
    driver.step_once();
    let ckpt = driver.checkpoint();
    let json = ckpt.to_json();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/checkpoint.json", &json).expect("write checkpoint");
    println!(
        "checkpointed after 2 steps: {} grids, {} KB on disk",
        ckpt.hierarchy.patches.len(),
        json.len() / 1024
    );

    // phase 2: resume on a three-site system
    let loaded = Checkpoint::from_json(&json).expect("parse checkpoint");
    let sys2 = presets::three_site_wan(2, 2, 2, 7);
    println!("\nphase 2 on {}", sys2.describe());
    let mut resumed = Driver::resume(sys2, cfg(), &loaded);
    resumed.step_once();
    resumed.step_once();
    let result = resumed.finish();
    println!("{}", result.summary());
    println!(
        "\nThe solution carried over exactly (same grids, same fields); only\n\
         the simulated clock restarted — as in a real job restart."
    );
}
